"""Section 7.2 design-space options: privacy/performance trade-offs.

The paper describes (but does not enable by default) several hardening
options; all are implemented here so the trade-offs can be measured:

* **multiplicity upper bound** (Section 7.2.1) — compile with
  ``CopseCompiler(multiplicity_bound=...)``; Diane learns only the bound,
  and the reshuffling multiply grows with the looseness of the bound;
* **server-side replication** (Section 7.2.1) — Diane sends each feature
  once; Sally replicates directly on ciphertext via a plaintext
  replication matrix, so no multiplicity information leaks at all, at the
  cost of ``q``-diagonal ciphertext work per bit plane;
* **codebook shuffling** (Section 7.2.2) — Sally applies a random
  permutation (a plaintext matrix / ciphertext vector product) to the
  result bitvector and the codebook, hiding label order;
* **codebook padding** (Section 7.2.2) — folded into the shuffle: the
  permutation matrix is widened with rows that land on no real slot,
  appending dummy labels whose result bits are always 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import RuntimeProtocolError
from repro.core.matmul import halevi_shoup_matvec
from repro.core.runtime import (
    EncryptedModel,
    EncryptedQuery,
    PHASE_DATA_ENCRYPT,
    QuerySpec,
)
from repro.core.structures import DiagonalMatrix
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext
from repro.fhe.keys import KeyPair
from repro.fhe.simd import to_bitplanes


# ---------------------------------------------------------------------------
# Server-side replication (no multiplicity leak)
# ---------------------------------------------------------------------------


def build_replication_matrix(n_features: int, multiplicity: int) -> DiagonalMatrix:
    """The ``q x n`` matrix that replicates each feature ``K`` times."""
    q = n_features * multiplicity
    dense = np.zeros((q, n_features), dtype=np.uint8)
    for feature in range(n_features):
        for copy in range(multiplicity):
            dense[feature * multiplicity + copy, feature] = 1
    return DiagonalMatrix.from_dense(dense)


def prepare_unreplicated_query(
    ctx: FheContext,
    spec: QuerySpec,
    keys: KeyPair,
    features: Sequence[int],
) -> EncryptedQuery:
    """Diane's query without replication: one slot per feature.

    Used with :func:`replicate_on_server`; Diane never learns ``K``.
    """
    if len(features) != spec.n_features:
        raise RuntimeProtocolError(
            f"model expects {spec.n_features} features, got {len(features)}"
        )
    limit = 1 << spec.precision
    for value in features:
        if not 0 <= int(value) < limit:
            raise RuntimeProtocolError(
                f"feature value {value} does not fit in "
                f"{spec.precision} unsigned bits"
            )
    planes = to_bitplanes([int(v) for v in features], spec.precision)
    with ctx.tracker.phase(PHASE_DATA_ENCRYPT):
        encrypted = [
            ctx.encrypt(planes[i], keys.public) for i in range(planes.shape[0])
        ]
    return EncryptedQuery(planes=encrypted)


def replicate_on_server(
    ctx: FheContext,
    query: EncryptedQuery,
    n_features: int,
    multiplicity: int,
) -> EncryptedQuery:
    """Sally's ciphertext replication of an unreplicated query.

    Each bit plane is multiplied by the plaintext replication matrix —
    the "much more expensive" ciphertext equivalent of Diane's free
    plaintext replication that Section 7.2.1 describes.
    """
    if query.width != n_features:
        raise RuntimeProtocolError(
            f"expected an unreplicated query of width {n_features}, "
            f"got {query.width}"
        )
    matrix = build_replication_matrix(n_features, multiplicity)
    diagonals = [ctx.encode(matrix.diagonal(i)) for i in range(matrix.num_diagonals)]
    q = n_features * multiplicity
    with ctx.tracker.phase("server_replicate"):
        planes: List[Ciphertext] = []
        for plane in query.planes:
            replicated = halevi_shoup_matvec(
                ctx, diagonals, rows=q, cols=n_features, vector=plane
            )
            if not isinstance(replicated, Ciphertext):  # pragma: no cover
                raise RuntimeProtocolError("replicated plane must be encrypted")
            planes.append(replicated)
    return EncryptedQuery(planes=planes)


# ---------------------------------------------------------------------------
# Codebook shuffling and padding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShuffledResult:
    """A shuffled (optionally padded) result with its matching codebook."""

    ciphertext: Ciphertext
    codebook: List[int]


def shuffle_classification(
    ctx: FheContext,
    result: Ciphertext,
    codebook: Sequence[int],
    rng: np.random.Generator,
    pad_to: Optional[int] = None,
    n_label_kinds: Optional[int] = None,
) -> ShuffledResult:
    """Permute (and optionally pad) the classification bitvector.

    The permutation is applied as a plaintext-matrix/ciphertext-vector
    product, and the same permutation is applied to the codebook, so
    Diane's decoding is unaffected while the label order (and, with
    padding, the per-label leaf counts) are hidden.

    ``pad_to`` extends the result with dummy slots that are always 0 and
    whose codebook entries are random labels; per the paper, padding is
    folded into the shuffle at no extra multiplicative depth.
    """
    n = result.length
    if len(codebook) != n:
        raise RuntimeProtocolError(
            f"codebook length {len(codebook)} does not match the result "
            f"width {n}"
        )
    out_n = n if pad_to is None else pad_to
    if out_n < n:
        raise RuntimeProtocolError(
            f"cannot pad a {n}-slot result down to {out_n} slots"
        )
    kinds = n_label_kinds if n_label_kinds is not None else (max(codebook) + 1)

    permutation = rng.permutation(out_n)
    dense = np.zeros((out_n, n), dtype=np.uint8)
    new_codebook: List[int] = [0] * out_n
    for out_slot in range(out_n):
        source = int(permutation[out_slot])
        if source < n:
            dense[out_slot, source] = 1
            new_codebook[out_slot] = int(codebook[source])
        else:
            # A dummy slot: no source, result bit is always 0, and the
            # codebook entry is a random plausible label.
            new_codebook[out_slot] = int(rng.integers(0, kinds))
    matrix = DiagonalMatrix.from_dense(dense)
    diagonals = [ctx.encode(matrix.diagonal(i)) for i in range(matrix.num_diagonals)]
    with ctx.tracker.phase("shuffle_result"):
        shuffled = halevi_shoup_matvec(
            ctx, diagonals, rows=out_n, cols=n, vector=result
        )
    if not isinstance(shuffled, Ciphertext):  # pragma: no cover
        raise RuntimeProtocolError("shuffled result must be encrypted")
    return ShuffledResult(ciphertext=shuffled, codebook=new_codebook)
