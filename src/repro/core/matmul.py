"""Halevi-Shoup diagonal matrix-vector multiplication (Section 4.1.2).

To multiply an ``m x n`` boolean matrix by a packed length-``n`` vector,
the ``i``-th generalized diagonal is multiplied slot-wise with the vector
rotated left by ``i`` slots, and the per-diagonal products are XOR-summed:

    (Mv)[j] = XOR_i  d_i[j] AND v[(j + i) mod n]

When ``m > n`` the rotated vector is cyclically extended to ``m`` slots;
when ``m < n`` it is truncated after rotating.  The multiplicative depth is
a constant 1 regardless of matrix size — the property that lets COPSE keep
its whole circuit at depth ``2 log p + log d + 2``.

The matrix may be held in plaintext (Maurice = Sally: the model never
leaves the server) or as a vector of ciphertext diagonals (the offloading
configuration); both paths share this implementation via the context's
mixed-operand combinators.

For COPSE's matrices every row has at most one set bit, so the XOR-sum
never cancels a true result — GF(2) addition coincides with the integer
sum the construction intends.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import CompileError
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext, Vector


def halevi_shoup_matvec(
    ctx: FheContext,
    diagonals: Sequence[Vector],
    rows: int,
    cols: int,
    vector: Ciphertext,
) -> Vector:
    """Multiply a diagonal-form matrix by a packed ciphertext vector.

    ``diagonals`` holds the ``cols`` generalized diagonals (each of logical
    length ``rows``), as plaintext or ciphertext vectors.
    """
    if len(diagonals) != cols:
        raise CompileError(
            f"a {rows}x{cols} matrix has {cols} generalized diagonals, "
            f"got {len(diagonals)}"
        )
    if vector.length != cols:
        raise CompileError(
            f"matrix with {cols} columns applied to a vector of length "
            f"{vector.length}"
        )
    products: List[Vector] = []
    for i, diagonal in enumerate(diagonals):
        if len(diagonal) != rows:
            raise CompileError(
                f"diagonal {i} has length {len(diagonal)}, expected {rows}"
            )
        rotated = ctx.rotate(vector, i) if i else vector
        if rows > cols:
            rotated = ctx.cyclic_extend(rotated, rows)
        elif rows < cols:
            rotated = ctx.truncate(rotated, rows)
        products.append(ctx.and_any(diagonal, rotated))
    return ctx.xor_all(products)


def encode_diagonals(ctx: FheContext, diagonals) -> List[PlainVector]:
    """Encode a DiagonalMatrix's rows of diagonals as plaintext vectors."""
    return [ctx.encode(diagonals[i]) for i in range(diagonals.shape[0])]


def encrypt_diagonals(ctx: FheContext, diagonals, public_key) -> List[Ciphertext]:
    """Encrypt a DiagonalMatrix's diagonals (one ciphertext per column).

    This is why Section 7.1 notes the evaluator learns the column count of
    every encrypted matrix: it sees one ciphertext per diagonal.
    """
    return [ctx.encrypt(diagonals[i], public_key) for i in range(diagonals.shape[0])]
