"""COPSE core: the paper's primary contribution.

* :mod:`repro.core.analysis` — model analysis (Section 4.1.1): preorder
  enumerations, levels, downstream sets, multiplicities, the per-level
  branch selection that drives level matrices and masks;
* :mod:`repro.core.fixedpoint` — fixed-point codec (Section 4.1.2);
* :mod:`repro.core.structures` — the four vectorizable structures
  (Section 4.2): padded threshold vector, reshuffling matrix, level
  matrices, level masks, all with generalized-diagonal representations;
* :mod:`repro.core.seccomp` — the SecComp comparison circuit;
* :mod:`repro.core.matmul` — Halevi-Shoup diagonal matrix-vector product;
* :mod:`repro.core.compiler` — the COPSE compiler: forest -> CompiledModel;
* :mod:`repro.core.codegen` — staging back end emitting specialized source;
* :mod:`repro.core.runtime` — Maurice / Diane / Sally and Algorithm 1;
* :mod:`repro.core.complexity` — the analytic op counts of Tables 1 and 2;
* :mod:`repro.core.extensions` — the Section 7.2 privacy/performance knobs.
"""

from repro.core.analysis import ModelAnalysis
from repro.core.fixedpoint import FixedPointCodec
from repro.core.compiler import CompiledModel, CopseCompiler
from repro.core.runtime import (
    CopseServer,
    DataOwner,
    EncryptedModel,
    EncryptedQuery,
    InferenceResult,
    ModelOwner,
    secure_inference,
)
from repro.core.complexity import CopseComplexity
from repro.core.threeparty import ThreePartyOutcome, three_party_inference

__all__ = [
    "ModelAnalysis",
    "FixedPointCodec",
    "CompiledModel",
    "CopseCompiler",
    "ModelOwner",
    "DataOwner",
    "CopseServer",
    "EncryptedModel",
    "EncryptedQuery",
    "InferenceResult",
    "secure_inference",
    "CopseComplexity",
    "ThreePartyOutcome",
    "three_party_inference",
]
