"""The genuine three-party deployment over threshold FHE (Section 7.1).

The paper's two-party evaluation is forced by single-key FHE; it notes
that threshold-FHE "wrappers ... can be applied directly to COPSE at the
cost of introducing additional rounds of communication and additional
encryption/decryption steps."  This module applies the wrapper:

* Maurice and Diane jointly hold a threshold key
  (:mod:`repro.fhe.multikey`); Sally holds nothing;
* the model and the query are encrypted under the joint public key;
* Sally evaluates Algorithm 1 unchanged;
* decrypting the result takes one partial decryption from *each*
  shareholder — Diane alone (or Maurice alone, or Sally with any single
  shareholder's cooperation) cannot open anything.

The protocol records a message transcript (who -> who, what, how many
ciphertexts) so the communication cost of the wrapper — the "additional
rounds" — is measurable; ``tests/security`` verify both correctness and
the no-single-party-decrypts property, and that collusion between Sally
and one shareholder still does not reconstruct (it takes *both*
shareholders' partials, matching Table 4's observation that collusion
with one data party reveals that party's data only through its own
partials).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import RuntimeProtocolError
from repro.core.compiler import CompiledModel
from repro.core.runtime import (
    CopseServer,
    EncryptedModel,
    EncryptedQuery,
    InferenceResult,
    ModelOwner,
)
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.context import FheContext
from repro.fhe.multikey import (
    JointKey,
    PartialDecryption,
    SecretShare,
    combine_partials,
    partial_decrypt,
    threshold_keygen,
)
from repro.fhe.params import EncryptionParams
from repro.fhe.simd import replicate, to_bitplanes

#: Protocol party names used in transcripts.
MAURICE = "maurice"
DIANE = "diane"
SALLY = "sally"


@dataclass(frozen=True)
class Message:
    """One protocol message in the transcript."""

    sender: str
    receiver: str
    kind: str
    ciphertexts: int = 0


@dataclass
class Transcript:
    """Ordered record of everything the parties exchanged."""

    messages: List[Message] = field(default_factory=list)

    def send(self, sender: str, receiver: str, kind: str, ciphertexts: int = 0):
        self.messages.append(Message(sender, receiver, kind, ciphertexts))

    def rounds(self) -> int:
        """Communication rounds: maximal alternations of direction."""
        return len(self.messages)

    def ciphertexts_sent(self, sender: Optional[str] = None) -> int:
        return sum(
            m.ciphertexts
            for m in self.messages
            if sender is None or m.sender == sender
        )

    def kinds(self) -> List[str]:
        return [m.kind for m in self.messages]


class ThresholdModelOwner:
    """Maurice in the three-party protocol: holds share 0."""

    def __init__(self, model: CompiledModel, share: SecretShare):
        self._owner = ModelOwner(model)
        self.share = share
        self.model = model

    def query_spec(self):
        return self._owner.query_spec()

    def encrypt_model(self, ctx: FheContext, joint_public) -> EncryptedModel:
        return self._owner.encrypt_model(ctx, joint_public)

    def partial_decrypt(self, ctx: FheContext, ct: Ciphertext) -> PartialDecryption:
        return partial_decrypt(ctx, ct, self.share)


class ThresholdDataOwner:
    """Diane in the three-party protocol: holds share 1."""

    def __init__(self, spec, share: SecretShare, joint_public):
        self.spec = spec
        self.share = share
        self.joint_public = joint_public

    def prepare_query(self, ctx: FheContext, features: Sequence[int]) -> EncryptedQuery:
        limit = 1 << self.spec.precision
        if len(features) != self.spec.n_features:
            raise RuntimeProtocolError(
                f"model expects {self.spec.n_features} features, "
                f"got {len(features)}"
            )
        for value in features:
            if not 0 <= int(value) < limit:
                raise RuntimeProtocolError(
                    f"feature value {value} does not fit in "
                    f"{self.spec.precision} unsigned bits"
                )
        replicated = replicate(
            [int(v) for v in features], self.spec.max_multiplicity
        )
        planes = to_bitplanes(replicated, self.spec.precision)
        with ctx.tracker.phase("data_encrypt"):
            encrypted = [
                ctx.encrypt(planes[i], self.joint_public)
                for i in range(planes.shape[0])
            ]
        return EncryptedQuery(planes=encrypted, public_key=self.joint_public)

    def partial_decrypt(self, ctx: FheContext, ct: Ciphertext) -> PartialDecryption:
        return partial_decrypt(ctx, ct, self.share)

    def combine(
        self, ct: Ciphertext, partials: Sequence[PartialDecryption]
    ) -> InferenceResult:
        bits = combine_partials(ct, partials)
        return InferenceResult(
            bitvector=bits,
            codebook=list(self.spec.codebook),
            label_names=list(self.spec.label_names),
        )


@dataclass
class ThreePartyOutcome:
    """Result plus the evidence of what the protocol cost."""

    result: InferenceResult
    transcript: Transcript
    context: FheContext
    joint_key: JointKey
    encrypted_result: Ciphertext


def three_party_inference(
    compiled: CompiledModel,
    features: Sequence[int],
    params: Optional[EncryptionParams] = None,
    ctx: Optional[FheContext] = None,
) -> ThreePartyOutcome:
    """Run the full three-party protocol once.

    Steps (the transcript records each):

    1. Maurice and Diane run threshold keygen (joint public key; one
       share each).
    2. Maurice compiles + encrypts the model under the joint key and
       ships it to Sally.
    3. Diane encrypts her replicated feature vector and ships it.
    4. Sally evaluates Algorithm 1 and returns the encrypted result to
       both shareholders.
    5. Maurice sends Diane his partial decryption; Diane combines it
       with her own to open the classification.
    """
    if params is None:
        params = EncryptionParams.paper_defaults()
    compiled.check_parameters(params)
    if ctx is None:
        ctx = FheContext(params)
    transcript = Transcript()

    # Step 1 — joint key establishment.
    joint = threshold_keygen(ctx, share_count=2)
    transcript.send(MAURICE, DIANE, "threshold-keygen")
    transcript.send(DIANE, MAURICE, "threshold-keygen-ack")

    maurice = ThresholdModelOwner(compiled, joint.shares[0])
    diane = ThresholdDataOwner(
        maurice.query_spec(), joint.shares[1], joint.public
    )
    sally = CopseServer(ctx)

    # Step 2 — encrypted model to the server.
    enc_model = maurice.encrypt_model(ctx, joint.public)
    model_cts = (
        len(enc_model.threshold_planes)
        + len(enc_model.reshuffle_diagonals)
        + sum(len(d) for d in enc_model.level_diagonals)
        + len(enc_model.level_masks)
    )
    transcript.send(MAURICE, SALLY, "encrypted-model", model_cts)

    # Step 3 — encrypted query to the server.
    query = diane.prepare_query(ctx, features)
    transcript.send(DIANE, SALLY, "encrypted-query", len(query.planes))

    # Step 4 — evaluation; result to both shareholders.
    encrypted_result = sally.classify(enc_model, query)
    transcript.send(SALLY, DIANE, "encrypted-result", 1)
    transcript.send(SALLY, MAURICE, "encrypted-result", 1)

    # Step 5 — threshold decryption round.
    maurice_partial = maurice.partial_decrypt(ctx, encrypted_result)
    transcript.send(MAURICE, DIANE, "partial-decryption", 1)
    diane_partial = diane.partial_decrypt(ctx, encrypted_result)
    result = diane.combine(
        encrypted_result, [maurice_partial, diane_partial]
    )

    return ThreePartyOutcome(
        result=result,
        transcript=transcript,
        context=ctx,
        joint_key=joint,
        encrypted_result=encrypted_result,
    )
