"""Packaging for the COPSE reproduction (see DESIGN.md for the layout)."""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read_version() -> str:
    """Single-source the version from ``repro.__version__``."""
    init_path = os.path.join(_HERE, "src", "repro", "__init__.py")
    with open(init_path) as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="copse-repro",
    version=_read_version(),
    description=(
        "Reproduction of COPSE (PLDI 2021): vectorized secure evaluation "
        "of decision forests, with a batched secure-inference service"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        # pytest-timeout backs pytest.ini's ``timeout = 300``; without
        # it conftest.py falls back to a SIGALRM enforcer (and asserts
        # at configure time that one of the two is actually active).
        "test": ["pytest", "pytest-benchmark", "pytest-timeout",
                 "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
