#!/usr/bin/env python3
"""Party configurations and information leakage (Section 7 of the paper).

Walks through every two-party and three-party deployment scenario,
printing what each notional party (Maurice / Diane / Sally) learns —
reproducing Tables 3 and 4 — and then verifies the *mechanical* leakage:
what a real evaluator observes from the encrypted model's structure
matches exactly what the table says it may learn.

Run with:  python examples/party_configurations.py
"""

import numpy as np

from repro.core.compiler import CopseCompiler
from repro.core.runtime import ModelOwner
from repro.fhe.context import FheContext
from repro.forest.synthetic import random_forest
from repro.security.leakage import observed_by_server, scenario_leakage
from repro.security.noninterference import check_noninterference
from repro.security.parties import (
    Party,
    THREE_PARTY_SCENARIOS,
    TWO_PARTY_SCENARIOS,
)


def _fmt(leak) -> str:
    return "{" + ", ".join(sorted(leak)) + "}" if leak else "(nothing)"


def main() -> None:
    forest = random_forest(
        np.random.default_rng(17), [7, 8], max_depth=5
    )
    compiled = CopseCompiler(precision=8).compile(forest)
    print("model:", forest.describe(), "\n")

    print("Two-party configurations (Table 3):")
    for scenario in TWO_PARTY_SCENARIOS:
        report = scenario_leakage(scenario)
        print(f"  {scenario.name:12s}  "
              f"to Sally: {_fmt(report.to_server()):22s}"
              f"to Maurice: {_fmt(report.to_model_owner()):12s}"
              f"to Diane: {_fmt(report.to_data_owner())}")

    print("\nThree-party configurations (Table 4):")
    for scenario in THREE_PARTY_SCENARIOS:
        report = scenario_leakage(scenario)
        print(f"  {scenario.name:28s}  "
              f"to Sally: {_fmt(report.to_server()):22s}"
              f"to Diane: {_fmt(report.to_data_owner())}")

    # Mechanical check: encrypt the model and measure what the evaluator
    # can actually read off the ciphertext structure.
    ctx = FheContext()
    keys = ctx.keygen()
    encrypted = ModelOwner(compiled).encrypt_model(ctx, keys.public)
    observed = observed_by_server(encrypted)
    print(f"\nevaluator's structural observations: {observed}")
    assert observed["q"] == compiled.quantized_branching
    assert observed["b"] == compiled.branching
    assert observed["d"] == compiled.max_depth
    specified = scenario_leakage(TWO_PARTY_SCENARIOS[0]).revealed[Party.SERVER]
    assert set(observed) == specified
    print("matches Table 3's offloading row exactly: OK")

    # Noninterference: the operation trace is identical across inputs.
    check_noninterference(
        compiled, [[0, 0], [255, 255], [131, 7], [42, 199]]
    )
    print("operation trace is input-independent (noninterference): OK")


if __name__ == "__main__":
    main()
