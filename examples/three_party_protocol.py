#!/usr/bin/env python3
"""Genuine three-party inference over threshold FHE (Section 7.1).

The paper evaluates two-party configurations because single-key FHE
cannot keep Maurice's model and Diane's data private from each other at
the same time; it points at threshold FHE as the wrapper that enables
true three-party deployment.  This example runs that protocol:

* a hospital (Maurice) owns a diagnostic decision forest;
* a clinic (Diane) owns patient features;
* a cloud (Sally) owns only compute;
* Maurice and Diane share a joint key — decryption takes a partial
  decryption from BOTH of them, so no single party (and no party pair
  that excludes a shareholder) can open anything.

Run with:  python examples/three_party_protocol.py
"""

import numpy as np

from repro.core.compiler import CopseCompiler
from repro.core.threeparty import three_party_inference
from repro.errors import KeyMismatchError, RuntimeProtocolError
from repro.fhe.multikey import combine_partials, partial_decrypt
from repro.forest.synthetic import random_forest


def main() -> None:
    forest = random_forest(np.random.default_rng(8), [7, 8], max_depth=5)
    compiled = CopseCompiler(precision=8).compile(forest)
    print("model:", forest.describe())

    features = [90, 210]
    outcome = three_party_inference(compiled, features)
    result = outcome.result

    print(f"\nquery features: {features}")
    print(f"per-tree labels: {result.chosen_labels}")
    print(f"plurality: {result.plurality_name()}")
    assert result.bitvector == forest.label_bitvector(features)
    print("plaintext oracle agrees: OK")

    # The price of the wrapper: the protocol transcript.
    print("\nprotocol transcript:")
    for message in outcome.transcript.messages:
        volume = f" [{message.ciphertexts} cts]" if message.ciphertexts else ""
        print(f"  {message.sender:8s} -> {message.receiver:8s} "
              f"{message.kind}{volume}")
    print(f"total messages: {outcome.transcript.rounds()} "
          f"(two-party COPSE needs 3)")

    # No single party can decrypt the result.
    ctx = outcome.context
    ct = outcome.encrypted_result
    try:
        sally_keys = ctx.keygen()
        ctx.decrypt(ct, sally_keys.secret)
        raise AssertionError("Sally must not decrypt")
    except KeyMismatchError:
        print("\nSally cannot decrypt the result: OK")
    try:
        diane_only = partial_decrypt(ctx, ct, outcome.joint_key.shares[1])
        combine_partials(ct, [diane_only])
        raise AssertionError("one shareholder must not suffice")
    except RuntimeProtocolError:
        print("Diane's share alone cannot decrypt: OK")


if __name__ == "__main__":
    main()
