#!/usr/bin/env python3
"""Registering a custom FHE backend and running inference on it.

The whole COPSE stack — runtime, IR executor, batched serving, bench
harness — drives the FHE substrate through the ``FheBackend`` protocol
(:mod:`repro.fhe.backend`), so a user-supplied engine slots in with a
one-line registration.  This example builds an *auditing* backend: it
subclasses the fast vector backend (inheriting all op semantics) and
additionally journals every multiply, which a deployment might use to
rate-limit expensive operations per tenant.

Shown here:

1. subclass an existing backend (any ``FheContext`` subclass works —
   override only what differs),
2. ``register_backend("audited", ...)`` to name it,
3. select it everywhere a backend name threads through:
   ``FheContext(backend=...)``, ``secure_inference(backend=...)``, and
   ``CopseService(backend=...)`` / ``register_model(backend=...)``.

Run with:  python examples/custom_backend.py
"""

import numpy as np

from repro import CopseCompiler, CopseService, secure_inference
from repro.fhe import (
    FheBackend,
    FheContext,
    VectorFheContext,
    available_backends,
    register_backend,
)
from repro.forest import random_forest


class AuditedFheContext(VectorFheContext):
    """The vector backend plus a journal of every ciphertext multiply."""

    backend_name = "audited"

    def __init__(self, params=None, tracker=None, backend=None):
        super().__init__(params, tracker, backend)
        self.multiply_journal = []

    def multiply(self, a, b):
        # Journal the operand shapes (never the payloads!) and defer to
        # the inherited fast implementation.
        self.multiply_journal.append((len(a), len(b)))
        return super().multiply(a, b)


def main() -> None:
    register_backend(
        "audited",
        AuditedFheContext,
        description="vector backend + multiply journal (example)",
    )
    print("registered backends:", ", ".join(available_backends()))

    # The registry hands back our class through the generic seam.
    ctx = FheContext(backend="audited")
    assert isinstance(ctx, FheBackend) and isinstance(ctx, AuditedFheContext)

    rng = np.random.default_rng(2021)
    forest = random_forest(rng, branches_per_tree=[7, 8], max_depth=5)
    compiled = CopseCompiler(precision=8).compile(forest)

    # 1. Single inference on the custom backend.
    features = [137, 42]
    outcome = secure_inference(compiled, features, backend="audited")
    assert outcome.result.bitvector == forest.label_bitvector(features)
    journal = outcome.context.multiply_journal
    print(
        f"single inference on {outcome.backend!r}: oracle OK, "
        f"{len(journal)} ciphertext multiplies journaled "
        f"(widest operand {max(w for w, _ in journal)} slots)"
    )

    # 2. The batched service threads the same name end to end; the
    #    per-model choice is recorded in the service stats.
    with CopseService(threads=1, backend="audited") as service:
        service.register_model("demo", forest, precision=8)
        results = service.classify_many("demo", [[40, 200], [17, 3]])
        stats = service.stats()
    assert all(r.oracle_ok for r in results)
    print(f"served {stats.queries} queries; backends: {stats.model_backends}")


if __name__ == "__main__":
    main()
