#!/usr/bin/env python3
"""Quickstart: compile a decision forest and run one secure inference.

The flow mirrors Figure 2 of the paper:

1. Maurice trains (here: generates) a decision forest and compiles it
   with the COPSE compiler into vectorizable structures.
2. Diane replicates, pads, bit-slices, and encrypts her feature vector.
3. Sally evaluates Algorithm 1 entirely over ciphertexts.
4. Diane decrypts the N-hot classification bitvector.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import CopseCompiler, secure_inference
from repro.forest import random_forest


def main() -> None:
    # A small random forest: two trees with 7 and 8 branches, depth <= 5,
    # two features, three class labels (the shape of the paper's width78
    # microbenchmark).
    rng = np.random.default_rng(2021)
    forest = random_forest(rng, branches_per_tree=[7, 8], max_depth=5)
    print("model:", forest.describe())

    # Stage 1: compile to COPSE's vectorizable structures.
    compiled = CopseCompiler(precision=8).compile(forest)
    print("compiled:", compiled.describe())

    # Stage 2: run a secure inference end to end (offloading setup:
    # Maurice = Diane own the keys, Sally computes).
    features = [137, 42]
    outcome = secure_inference(compiled, features)
    result = outcome.result

    print(f"\nquery features: {features}")
    print(f"classification bitvector: {result.bitvector}")
    print(f"per-tree labels: {result.chosen_labels}")
    print(f"plurality vote: {result.plurality_name()}")

    # The plaintext oracle agrees bit for bit.
    assert result.bitvector == forest.label_bitvector(features)
    assert result.chosen_labels == forest.classify_per_tree(features)
    print("\nplaintext oracle agrees: OK")

    # What did the secure evaluation cost?
    tracker = outcome.tracker
    counts = {k.value: v for k, v in tracker.total_counts().items()}
    print(f"\nFHE operation counts: {counts}")
    print(f"multiplicative depth: {tracker.multiplicative_depth()}")


if __name__ == "__main__":
    main()
