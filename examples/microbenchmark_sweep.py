#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables from the command line.

Prints the Table 6 microbenchmark suite, the Figure 6 speedup comparison
on the microbenchmarks, and the Figure 10 per-phase breakdowns.  Pass
``--full`` to also run the real-world models (income/soccer, slower) and
the Table 5 parameter sweep.

Run with:  python examples/microbenchmark_sweep.py [--full]
"""

import sys

from repro.bench_harness import experiments
from repro.bench_harness.workloads import microbenchmark_workloads


def main() -> None:
    full = "--full" in sys.argv
    micro_names = [w.name for w in microbenchmark_workloads()]
    names = None if full else micro_names

    print(experiments.table6().render())
    print()

    print(experiments.figure6(queries=1, workload_names=names).render())
    print()

    print(experiments.figure7(queries=1, workload_names=names).render())
    print()

    for table in experiments.figure10(queries=1):
        print(table.render())
        print()

    if full:
        print(experiments.figure8(queries=1).render())
        print()
        print(experiments.figure9(queries=1).render())
        print()
        print(experiments.table5().render())
        print()

    print(experiments.table2(workload_name="width78").render())


if __name__ == "__main__":
    main()
