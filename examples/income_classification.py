#!/usr/bin/env python3
"""Secure income classification: the paper's income5 scenario end to end.

A bank (Maurice) trains a random forest predicting whether a customer
earns over $50k, on census-like data.  A fintech client (Diane) wants
classifications for her customers without revealing their attributes;
the bank does not want to reveal its model.  Both offload to an untrusted
cloud (Sally).

This example covers the full pipeline: dataset -> training -> accuracy
-> compilation -> encrypted model -> encrypted queries -> verification
that every secure answer equals the plaintext model's answer.

Run with:  python examples/income_classification.py
"""

from repro.core.compiler import CopseCompiler
from repro.core.runtime import CopseServer, DataOwner, ModelOwner
from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.forest.datasets import make_income_dataset
from repro.forest.train import RandomForestTrainer, accuracy, train_test_split


def main() -> None:
    # ------------------------------------------------------------------
    # Maurice: train and compile the model.
    # ------------------------------------------------------------------
    dataset = make_income_dataset(n_samples=1500, seed=7)
    X_train, y_train, X_test, y_test = train_test_split(
        dataset.features, dataset.labels, test_fraction=0.25, seed=0
    )
    trainer = RandomForestTrainer(
        n_trees=5, max_depth=8, min_samples_leaf=10, seed=42
    )
    forest = trainer.fit(
        X_train, y_train, dataset.label_names, dataset.feature_names
    )
    print("trained:", forest.describe())

    test_preds = [forest.classify(row) for row in X_test]
    print(f"held-out accuracy: {accuracy(test_preds, y_test):.3f}")

    compiled = CopseCompiler(precision=8).compile(forest)
    params = CopseCompiler().select_parameters(compiled)
    print("compiled:", compiled.describe())
    print("selected parameters:", params.describe())

    # ------------------------------------------------------------------
    # Protocol setup.  Offloading configuration: Maurice and Diane share
    # a key pair (the paper's M = D case); Sally owns nothing.
    # ------------------------------------------------------------------
    ctx = FheContext(params)
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    sally = CopseServer(ctx)

    encrypted_model = maurice.encrypt_model(ctx, keys.public)
    print(
        f"\nmodel shipped to the server as "
        f"{len(encrypted_model.threshold_planes)} threshold planes, "
        f"{len(encrypted_model.reshuffle_diagonals)} reshuffle diagonals, "
        f"{len(encrypted_model.level_diagonals)} level matrices"
    )

    # ------------------------------------------------------------------
    # Diane: classify the first few held-out customers securely.
    # ------------------------------------------------------------------
    cost_model = CostModel(params)

    def inference_ms() -> float:
        """Simulated time of everything recorded so far, inference phases
        only (encryption is one-time setup, as in the paper's timings)."""
        return cost_model.sequential_ms(
            ctx.tracker,
            phases=("comparison", "reshuffle", "levels", "accumulate"),
        )

    print("\ncustomer  secure      plaintext   agree  simulated-ms")
    elapsed = 0.0
    for i in range(5):
        customer = [int(v) for v in X_test[i]]
        query = diane.prepare_query(ctx, customer)
        encrypted_result = sally.classify(encrypted_model, query)
        result = diane.decrypt_result(ctx, encrypted_result)

        secure_label = dataset.label_names[result.plurality()]
        plain_label = dataset.label_names[forest.classify(customer)]
        total = inference_ms()
        query_ms, elapsed = total - elapsed, total
        agree = "yes" if secure_label == plain_label else "NO"
        print(
            f"{i:8d}  {secure_label:10s}  {plain_label:10s}  {agree:5s} "
            f"{query_ms:10.1f}"
        )
        assert secure_label == plain_label

    print("\nall secure classifications match the plaintext model: OK")


if __name__ == "__main__":
    main()
