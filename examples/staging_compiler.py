#!/usr/bin/env python3
"""The staging metacompiler: serialized model -> specialized module.

The paper's COPSE compiler emits a C++ program embedding the model's
vectorizable structures, which links against the runtime (Section 5).
This example exercises the Python analogue of that pipeline:

1. a trained model is serialized to the Section 5 text format;
2. the compiler parses it and stages it into a specialized Python module
   (structures baked in as literals, entry points mirroring the C++ API);
3. the generated module is written to disk, imported, and used for a
   secure inference — with no model re-analysis at run time.

Run with:  python examples/staging_compiler.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.codegen import exec_generated_module, generate_module_source
from repro.core.compiler import CopseCompiler
from repro.core.runtime import DataOwner
from repro.fhe.context import FheContext
from repro.forest.serialize import dumps_forest
from repro.forest.synthetic import random_forest


def main() -> None:
    # A trained model arrives as its serialized text form.
    forest = random_forest(np.random.default_rng(5), [6, 7], max_depth=4)
    serialized = dumps_forest(forest)
    print("serialized model (first lines):")
    for line in serialized.splitlines()[:3]:
        print(f"  {line[:72]}{'...' if len(line) > 72 else ''}")

    # Stage 1: parse + compile + emit specialized source.
    compiler = CopseCompiler(precision=8)
    compiled = compiler.compile_serialized(serialized)
    source = generate_module_source(compiled)

    out_path = Path(tempfile.gettempdir()) / "copse_staged_model.py"
    out_path.write_text(source)
    print(f"\nstaged module written to {out_path} "
          f"({len(source.splitlines())} lines)")

    # Stage 2: load the generated module and serve queries with it.
    staged = exec_generated_module(out_path.read_text())
    ctx = FheContext()
    keys = ctx.keygen()
    enc_model = staged["encrypt_model"](ctx, keys.public)
    diane = DataOwner(staged["query_spec"](), keys)

    rng = np.random.default_rng(0)
    for i in range(3):
        features = [int(v) for v in rng.integers(0, 256, 2)]
        query = diane.prepare_query(ctx, features)
        result_ct = staged["classify"](ctx, enc_model, query)
        result = diane.decrypt_result(ctx, result_ct)
        expected = forest.label_bitvector(features)
        status = "OK" if result.bitvector == expected else "MISMATCH"
        print(f"query {i} {features}: per-tree labels "
              f"{result.chosen_labels} [{status}]")
        assert result.bitvector == expected

    print("\nstaged module agrees with the interpreter and the oracle: OK")


if __name__ == "__main__":
    main()
