#!/usr/bin/env python3
"""Lowering COPSE onto the optimizing IR (the paper's future work).

The conclusion of the paper proposes implementing COPSE's primitives on
a higher-level FHE intermediate language (like EVA) "allowing for
further tuning and optimization."  This example stages a compiled model
into one IR graph, runs the optimizer, and shows what it finds: the
cyclic extensions of the rotated branch vector are common subexpressions
across all d level matrices, so CSE shares them — beating even the
hand-scheduled runtime's rotation count.

Run with:  python examples/ir_optimizer.py
"""

import numpy as np

from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.forest.synthetic import random_forest
from repro.ir import (
    analyze_counts,
    analyze_depth,
    build_inference_graph,
    ir_secure_inference,
    optimize,
)
from repro.ir.nodes import IrOp


def main() -> None:
    forest = random_forest(np.random.default_rng(12), [7, 8], max_depth=5)
    compiled = CopseCompiler(precision=8).compile(forest)
    print("model:", compiled.describe())

    raw = build_inference_graph(compiled)
    opt = optimize(raw)
    print(f"\nraw graph:       {raw.describe()}")
    print(f"optimized graph: {opt.describe()}")

    raw_counts = analyze_counts(raw)
    opt_counts = analyze_counts(opt)
    d, b = compiled.max_depth, compiled.branching
    print(
        f"\ncyclic extensions: {raw_counts[IrOp.EXTEND]} -> "
        f"{opt_counts[IrOp.EXTEND]} "
        f"(CSE shares one set of {b} across all {d} levels)"
    )
    print(
        f"rotations:         {raw_counts[IrOp.ROTATE]} -> "
        f"{opt_counts[IrOp.ROTATE]}"
    )
    print(
        f"multiplies:        {raw_counts[IrOp.MULTIPLY]} -> "
        f"{opt_counts[IrOp.MULTIPLY]} "
        f"(depth unchanged: {analyze_depth(opt)})"
    )

    # Correctness: IR path == direct runtime == plaintext oracle.
    rng = np.random.default_rng(0)
    graph = opt
    for _ in range(3):
        feats = [int(v) for v in rng.integers(0, 256, 2)]
        ir_out = ir_secure_inference(compiled, feats, graph=graph)
        direct = secure_inference(compiled, feats)
        oracle = forest.label_bitvector(feats)
        assert ir_out.result.bitvector == direct.result.bitvector == oracle
    print("\nIR path matches the direct runtime and the oracle: OK")


if __name__ == "__main__":
    main()
