#!/usr/bin/env python3
"""Match-outcome prediction with the privacy-hardening extensions.

A sports-analytics firm (Maurice = Sally: the model lives in plaintext on
the firm's own server, the paper's Section 8.3 configuration) offers
secure win/draw/loss predictions.  A betting-compliance client (Diane)
submits encrypted match features; the firm must never see them.

On top of the base protocol, this example enables the Section 7.2
hardening options:

* server-side feature replication — Diane sends each feature once and
  never learns the model's maximum multiplicity K;
* codebook shuffling with padding — Diane cannot learn the label order
  or the per-label leaf counts from the result vector.

Run with:  python examples/soccer_inference.py
"""

import numpy as np

from repro.core.compiler import CopseCompiler
from repro.core.extensions import (
    prepare_unreplicated_query,
    replicate_on_server,
    shuffle_classification,
)
from repro.core.runtime import CopseServer, DataOwner, ModelOwner
from repro.fhe.context import FheContext
from repro.forest.datasets import make_soccer_dataset
from repro.forest.train import RandomForestTrainer


def main() -> None:
    # The firm trains its forest on historical match data.
    dataset = make_soccer_dataset(n_samples=1200, seed=3)
    forest = RandomForestTrainer(
        n_trees=5, max_depth=6, min_samples_leaf=25, seed=1
    ).fit(dataset.features, dataset.labels, dataset.label_names,
          dataset.feature_names)
    compiled = CopseCompiler(precision=8).compile(forest)
    print("model:", forest.describe())

    # Maurice = Sally: the model stays in plaintext on the server — a
    # ~1.4x faster configuration (paper Figure 9) that reveals nothing
    # extra, since the server owns the model anyway.
    ctx = FheContext()
    keys = ctx.keygen()  # Diane's key pair
    maurice = ModelOwner(compiled)
    spec = maurice.query_spec()
    server_model = maurice.plaintext_model(ctx)
    sally = CopseServer(ctx)

    match = {
        "home_rank": 20, "away_rank": 180, "rank_gap": 200,
        "home_recent_goals": 120, "away_recent_goals": 60,
        "home_win_streak": 200, "away_win_streak": 30,
        "neutral_venue": 0, "tournament_stage": 128,
    }
    features = [match[name] for name in dataset.feature_names]
    print(f"query: {match}")

    # Hardening 1 — Diane sends each feature exactly once (she never
    # learns K); Sally replicates on ciphertext.
    slim_query = prepare_unreplicated_query(ctx, spec, keys, features)
    print(f"Diane sent {slim_query.width}-slot planes "
          f"(no multiplicity information)")
    query = replicate_on_server(
        ctx, slim_query, spec.n_features, spec.max_multiplicity
    )
    query.public_key = keys.public

    encrypted_result = sally.classify(server_model, query)

    # Hardening 2 — shuffle and pad the result + codebook before replying.
    shuffled = shuffle_classification(
        ctx,
        encrypted_result,
        spec.codebook,
        rng=np.random.default_rng(99),
        pad_to=compiled.num_labels + 8,
        n_label_kinds=len(spec.label_names),
    )

    # Diane decrypts and decodes against the shuffled codebook.
    bits = ctx.decrypt_bits(shuffled.ciphertext, keys.secret)
    votes = [shuffled.codebook[i] for i, b in enumerate(bits) if b]
    counts = {name: 0 for name in spec.label_names}
    for vote in votes:
        counts[spec.label_names[vote]] += 1
    prediction = max(counts, key=counts.get)
    print(f"per-tree votes: {counts}")
    print(f"prediction: {prediction}")

    # Oracle check.
    expected = [
        spec.label_names[l] for l in forest.classify_per_tree(features)
    ]
    assert sorted(
        spec.label_names[v] for v in votes
    ) == sorted(expected), "secure result diverged from the oracle"
    print("plaintext oracle agrees: OK")


if __name__ == "__main__":
    main()
