"""Figure 7: multithreaded vs single-threaded COPSE.

Paper claim: parallel speedup is modest for microbenchmarks and much
larger for the real-world models ("the real-world models are larger, and
present more parallel work"); multithreaded medians are ~12-17 ms (micro)
and ~40-123 ms (real-world).
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import geometric_mean
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.bench_harness.workloads import PAPER_THREAD_COUNT

from benchmarks.conftest import BENCH_QUERIES, MICRO_NAMES, REAL_SUBSET, workload


@pytest.mark.parametrize("name", MICRO_NAMES + REAL_SUBSET)
def test_fig7_multithreaded_inference(benchmark, name):
    w = workload(name)
    runner = InferenceRunner(
        w,
        RunnerConfig(
            system=SYSTEM_COPSE, queries=1, threads=PAPER_THREAD_COUNT
        ),
    )
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    assert record.correct
    benchmark.extra_info["simulated_multithreaded_ms"] = record.median_ms
    benchmark.extra_info["model"] = name


def test_fig7_table(benchmark, report_sink):
    table = benchmark.pedantic(
        experiments.figure7, kwargs={"queries": BENCH_QUERIES}, rounds=1,
        iterations=1,
    )
    report_sink.append(table.render())

    micro = [r[3] for r in table.rows if r[4] == "micro"]
    real = [r[3] for r in table.rows if r[4] == "real"]

    # Real-world models parallelize far better than microbenchmarks.
    assert geometric_mean(real) > 2 * geometric_mean(micro)
    # Paper bands (bar annotations): micro ~3.7-3.9x, real ~9-12x.
    assert 2.0 < geometric_mean(micro) < 6.0
    assert 7.0 < geometric_mean(real) < 18.0

    # Multithreaded medians in the paper's annotation bands.
    for row in table.rows:
        name, _, multi_ms, _, category = row
        if category == "micro":
            assert 8 < multi_ms < 30
        else:
            assert 25 < multi_ms < 200

    # Larger models achieve larger parallel speedups within a family.
    assert table.row("income15")[3] > table.row("income5")[3]
    assert table.row("soccer15")[3] > table.row("soccer5")[3]
