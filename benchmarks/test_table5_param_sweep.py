"""Table 5: the encryption-parameter sweep.

Paper claim: sweeping security / modulus bits / key-switching columns over
all benchmark models yields one dominant setting — security 128, 400 bits,
3 columns.  Our sweep reproduces that winner: 400 bits is the smallest
chain supporting prec16's depth-14 circuit at security 128, and 3 columns
is the smallest slot capacity fitting income15's padded threshold vector.
"""

from repro.bench_harness import experiments
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.fhe.params import EncryptionParams

from benchmarks.conftest import workload


def test_table5_sweep(report_sink, benchmark):
    table = benchmark.pedantic(
        experiments.table5, rounds=1, iterations=1
    )
    report_sink.append(table.render())

    note = next(n for n in table.notes if "dominant" in n)
    assert "security=128" in note
    assert "bits=400" in note
    assert "columns=3" in note

    # No sub-128-bit setting is ever feasible; no 3-column/400-bit
    # competitor is cheaper than the winner.
    winner = EncryptionParams(128, 400, 3)
    for row in table.rows:
        security, bits, columns, _cap, _slots, feasible, rel_cost = row
        if security < 128:
            assert feasible == "no"
        if feasible == "yes":
            assert rel_cost >= winner.size_factor - 1e-9


def test_selected_parameters_run_every_model(benchmark):
    """The sweep winner must actually evaluate the deepest and the widest
    model end to end."""
    best = benchmark.pedantic(
        experiments.selected_parameters, rounds=1, iterations=1
    )
    assert (best.security, best.bits, best.columns) == (128, 400, 3)

    for name in ("prec16", "income15"):
        w = workload(name)
        record = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_COPSE, queries=1, params=best)
        ).run()
        assert record.correct
