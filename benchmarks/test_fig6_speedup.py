"""Figure 6: single-threaded COPSE speedup over the Aloufi baseline.

Paper claim: COPSE outperforms the baseline on every model, "ranging from
5x to over 7x, with a geometric mean of close to 6x"; COPSE microbenchmark
medians sit between ~40 and ~65 ms and real-world models between ~0.37 and
~1.5 s.  Our reproduction asserts the same ordering and bands (with the
documented tolerance — see EXPERIMENTS.md for measured-vs-paper numbers).
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import geometric_mean
from repro.bench_harness.runner import (
    RunnerConfig,
    InferenceRunner,
    SYSTEM_BASELINE,
    SYSTEM_COPSE,
)

from benchmarks.conftest import BENCH_QUERIES, MICRO_NAMES, REAL_SUBSET, workload


@pytest.mark.parametrize("name", MICRO_NAMES + REAL_SUBSET)
@pytest.mark.parametrize("system", [SYSTEM_COPSE, SYSTEM_BASELINE])
def test_fig6_inference(benchmark, name, system):
    """Wall-clock benchmark of one secure inference; simulated FHE time in
    extra_info."""
    w = workload(name)
    config = RunnerConfig(system=system, queries=1)
    runner = InferenceRunner(w, config)

    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    assert record.correct
    benchmark.extra_info["simulated_ms"] = record.median_ms
    benchmark.extra_info["system"] = system
    benchmark.extra_info["model"] = name


def test_fig6_table(benchmark, report_sink):
    """Regenerate the full Figure 6 table and assert the paper's shape."""
    table = benchmark.pedantic(
        experiments.figure6, kwargs={"queries": BENCH_QUERIES}, rounds=1,
        iterations=1,
    )
    report_sink.append(table.render())

    speedups = table.column("speedup")
    assert all(s > 2.5 for s in speedups), "COPSE must win on every model"

    micro = [r[3] for r in table.rows if r[4] == "micro"]
    real = [r[3] for r in table.rows if r[4] == "real"]
    # Paper: geomean close to 6x; we document 4.5-5x (see EXPERIMENTS.md)
    # and gate on a conservative band so regressions are caught.
    assert 3.5 < geometric_mean(micro) < 8.0
    assert 3.0 < geometric_mean(real) < 8.0

    # Paper bands for COPSE medians: micro ~40-65 ms, real 0.37-1.6 s.
    for row in table.rows:
        _, copse_ms, baseline_ms, _, category = row
        assert baseline_ms > copse_ms
        if category == "micro":
            assert 25 < copse_ms < 95
        else:
            assert 250 < copse_ms < 2500

    # prec16 shows the largest microbenchmark speedup (comparison-bound).
    micro_rows = [r for r in table.rows if r[4] == "micro"]
    best = max(micro_rows, key=lambda r: r[3])
    assert best[0] == "prec16"
