"""Ablation: fixed-point precision vs accuracy vs secure-inference cost.

Section 4.1.2 fixes the fixed-point precision ``p`` at compile time, and
Figure 10c shows comparison cost growing superlinearly with it — but the
paper never quantifies what a *small* ``p`` costs in model quality.  This
ablation completes the trade-off curve: train on the census stand-in at
several quantization precisions, measure held-out accuracy, and measure
the simulated secure-inference cost of the resulting compiled model.

Expected shape: accuracy saturates by ~6-8 bits (the datasets' signal
does not need finer thresholds) while cost keeps rising with ``p`` —
supporting the paper's choice of p=8 for the real-world models.
"""

import numpy as np
import pytest

from repro.bench_harness.report import Table
from repro.core.compiler import CopseCompiler
from repro.core.runtime import INFERENCE_PHASES, secure_inference
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.forest.datasets import make_income_dataset
from repro.forest.train import RandomForestTrainer, accuracy, train_test_split

PRECISIONS = (2, 4, 6, 8, 12)


def _train_at_precision(precision: int):
    dataset = make_income_dataset(n_samples=1200, precision=precision, seed=5)
    X_train, y_train, X_test, y_test = train_test_split(
        dataset.features, dataset.labels, test_fraction=0.3, seed=1
    )
    forest = RandomForestTrainer(
        n_trees=5, max_depth=6, min_samples_leaf=10, seed=9
    ).fit(X_train, y_train, dataset.label_names, dataset.feature_names)
    preds = [forest.classify(row) for row in X_test]
    return forest, accuracy(preds, y_test), X_test


def test_precision_accuracy_cost_tradeoff(benchmark, report_sink):
    cost_model = CostModel(EncryptionParams.paper_defaults())

    def sweep():
        rows = []
        for precision in PRECISIONS:
            forest, acc, X_test = _train_at_precision(precision)
            compiled = CopseCompiler(precision=precision).compile(forest)
            features = [int(v) for v in X_test[0]]
            outcome = secure_inference(compiled, features)
            assert outcome.result.bitvector == forest.label_bitvector(features)
            total_ms = cost_model.sequential_ms(
                outcome.tracker, phases=INFERENCE_PHASES
            )
            comparison_ms = cost_model.phase_sequential_ms(
                outcome.tracker, "comparison"
            )
            rows.append(
                (precision, acc, comparison_ms, total_ms,
                 compiled.multiplicative_depth)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        title="Ablation: precision vs accuracy vs secure cost (income, 5 trees)",
        columns=[
            "precision", "accuracy", "comparison_ms", "total_ms", "mult_depth",
        ],
    )
    for precision, acc, comparison_ms, total_ms, depth in rows:
        table.add_row(
            precision, round(acc, 3), round(comparison_ms, 1),
            round(total_ms, 1), depth,
        )
    table.add_note(
        "total_ms is confounded by model size (each precision trains a "
        "different forest); comparison_ms isolates the precision effect "
        "(COPSE's packed comparison is independent of branch count)"
    )
    report_sink.append(table.render())

    by_p = {p: (acc, cmp_ms, depth) for p, acc, cmp_ms, _, depth in rows}
    # Accuracy saturates: 8 bits is within noise of 12 bits...
    assert by_p[8][0] >= by_p[12][0] - 0.03
    # ... and at least as good as 2 bits (thresholds too coarse there).
    assert by_p[8][0] >= by_p[2][0]
    # Comparison cost and circuit depth rise monotonically with precision.
    assert by_p[12][1] > by_p[8][1] > by_p[4][1] > by_p[2][1]
    assert by_p[12][2] >= by_p[8][2] >= by_p[4][2] >= by_p[2][2]


@pytest.mark.parametrize("precision", [4, 8])
def test_precision_end_to_end(benchmark, precision):
    forest, acc, X_test = _train_at_precision(precision)
    compiled = CopseCompiler(precision=precision).compile(forest)
    features = [int(v) for v in X_test[1]]

    def run():
        return secure_inference(compiled, features)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.result.bitvector == forest.label_bitvector(features)
    benchmark.extra_info["accuracy"] = round(acc, 3)
    benchmark.extra_info["depth"] = compiled.multiplicative_depth
