"""Backend speedup: wall-clock per FHE backend on the width78 workload.

The pluggable-backend redesign claims the ``vector`` backend executes
the same circuits measurably faster than the ``reference`` simulator —
identical bits, identical simulated cost, less bookkeeping.  Unlike the
other benchmarks (which report *simulated* FHE milliseconds), the
artifact here is real wall-clock of the simulator, so this is the one
table where the pytest-benchmark timings and the reported numbers
measure the same thing.
"""

from repro.bench_harness import experiments

from benchmarks.conftest import BENCH_QUERIES


def test_backend_speedup_width78(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: experiments.backend_speedup(
            workload_name="width78", queries=max(BENCH_QUERIES, 2)
        ),
        rounds=1,
        iterations=1,
    )

    # Every (backend, mode) row agreed with the plaintext oracle.
    assert all(ok == "ok" for ok in table.column("oracle"))

    rows = {(r[0], r[1]): r for r in table.rows}
    for mode in ("single", "batched/plan", "batched/eager"):
        vector_speedup = rows[("vector", mode)][3]
        # The target is >= 2x; assert a generous margin so a loaded CI
        # machine cannot flake the suite while still locking the claim
        # that vector is measurably faster, never slower.
        assert vector_speedup > 1.2, (
            f"vector backend only {vector_speedup:.2f}x on {mode}"
        )

    benchmark.extra_info["vector_single_speedup"] = round(
        rows[("vector", "single")][3], 2
    )
    benchmark.extra_info["vector_batched_plan_speedup"] = round(
        rows[("vector", "batched/plan")][3], 2
    )
    benchmark.extra_info["vector_batched_eager_speedup"] = round(
        rows[("vector", "batched/eager")][3], 2
    )
    report_sink.append(table.render())
