"""Figure 9: plaintext-model (Maurice = Sally) vs encrypted-model setup.

Paper claim: "plaintext models result in substantial speedups of roughly
1.4x" — the model matrices become constant operands, avoiding
relinearization.
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import geometric_mean
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE

from benchmarks.conftest import BENCH_QUERIES, REAL_SUBSET, workload


@pytest.mark.parametrize("name", ["width78"] + REAL_SUBSET)
@pytest.mark.parametrize("encrypted_model", [True, False])
def test_fig9_inference(benchmark, name, encrypted_model):
    w = workload(name)
    runner = InferenceRunner(
        w,
        RunnerConfig(
            system=SYSTEM_COPSE, queries=1, encrypted_model=encrypted_model
        ),
    )
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    assert record.correct
    benchmark.extra_info["simulated_ms"] = record.median_ms
    benchmark.extra_info["encrypted_model"] = encrypted_model


def test_fig9_table(benchmark, report_sink):
    table = benchmark.pedantic(
        experiments.figure9, kwargs={"queries": BENCH_QUERIES}, rounds=1,
        iterations=1,
    )
    report_sink.append(table.render())

    speedups = table.column("speedup")
    # Every model benefits; the overall effect is the paper's ~1.4x.
    assert all(s > 1.05 for s in speedups)
    real = [r[3] for r in table.rows if r[4] == "real"]
    assert 1.2 < geometric_mean(real) < 1.7
