"""Table 1: per-step operation counts and multiplicative depths.

The measured counts of every phase must equal our implementation formulas
exactly, and track the paper's printed formulas within the documented
deviations (DESIGN.md section 5).
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.core.complexity import (
    impl_comparison,
    impl_levels_shared,
    impl_reshuffle,
    impl_single_level,
    impl_accumulation,
    merge_counts,
    paper_comparison,
    paper_single_level,
)

from benchmarks.conftest import workload


@pytest.mark.parametrize("name", ["depth4", "width677", "prec16"])
def test_table1_phase_counts_exact(benchmark, name):
    w = workload(name)
    runner = InferenceRunner(w, RunnerConfig(system=SYSTEM_COPSE, queries=1))
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    m = w.compiled
    p, b, q, d = m.precision, m.branching, m.quantized_branching, m.max_depth
    predicted = merge_counts(
        impl_comparison(p),
        impl_reshuffle(b, q),
        impl_levels_shared(b),
        impl_accumulation(d),
        *[impl_single_level(b) for _ in range(d)],
    )
    assert record.op_counts == predicted
    for op, count in predicted.items():
        benchmark.extra_info[op] = count


def test_table1_vs_paper_formulas(benchmark, report_sink):
    tables = benchmark.pedantic(
        experiments.table1, kwargs={"workload_name": "width78"}, rounds=1,
        iterations=1,
    )
    for table in tables:
        report_sink.append(table.render())

    w = workload("width78")
    p = w.compiled.precision
    b = w.compiled.branching

    ours = impl_comparison(p)
    papers = paper_comparison(p)
    # Adds and constant adds match Table 1(a) exactly.
    assert ours["add"] == papers["add"]
    assert ours["const_add"] == papers["const_add"]
    # Multiplies match exactly too (the uniform-scan Aloufi circuit).
    assert ours["multiply"] == papers["multiply"]

    ours_level = impl_single_level(b)
    papers_level = paper_single_level(b)
    assert ours_level["multiply"] == papers_level["multiply"]
    assert ours_level["rotate"] == papers_level["rotate"]
    assert abs(ours_level["add"] - papers_level["add"]) <= 1
