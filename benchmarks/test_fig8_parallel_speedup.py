"""Figure 8: COPSE vs the baseline, both multithreaded.

Paper claim: COPSE still wins when both systems use 32 threads, but by a
smaller factor than in Figure 6 — ciphertext packing has already consumed
parallelism that the baseline can only reach through threads.
"""

from repro.bench_harness import experiments

from benchmarks.conftest import BENCH_QUERIES


def test_fig8_table(benchmark, report_sink):
    fig8 = benchmark.pedantic(
        experiments.figure8, kwargs={"queries": BENCH_QUERIES}, rounds=1,
        iterations=1,
    )
    fig6 = experiments.figure6(queries=BENCH_QUERIES)
    report_sink.append(fig8.render())

    for row in fig8.rows:
        name, copse_ms, baseline_ms, speedup, _category = row
        # COPSE still wins on every model...
        assert speedup > 1.0, f"{name}: baseline must not win"
        # ... but by less than single-threaded (the paper's observation
        # that the baseline scales better under threading).
        assert speedup < fig6.row(name)[3], name

    # The gap narrows more for small models (less residual parallelism).
    micro = [r[3] for r in fig8.rows if r[4] == "micro"]
    real = [r[3] for r in fig8.rows if r[4] == "real"]
    assert max(micro) < max(real)
