"""Ablation benchmarks for COPSE design choices (beyond the paper's own
evaluation; see DESIGN.md section 6).

* SecComp variant: the paper-faithful Aloufi circuit vs our optimized
  rewrite (XOR combine, triangle scan, constant NOT) — quantifies how
  much of the comparison cost is the multi-key-compatible formulation.
* Section 7.2 extensions: server-side replication and codebook
  shuffling/padding — the privacy hardening's runtime price.
"""

import numpy as np
import pytest

from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.core.extensions import (
    prepare_unreplicated_query,
    replicate_on_server,
    shuffle_classification,
)
from repro.core.runtime import CopseServer, DataOwner, ModelOwner
from repro.core.seccomp import VARIANT_ALOUFI, VARIANT_OPTIMIZED
from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams

from benchmarks.conftest import workload


@pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
@pytest.mark.parametrize("name", ["prec8", "prec16"])
def test_ablation_seccomp_variant(benchmark, name, variant):
    w = workload(name)
    runner = InferenceRunner(
        w,
        RunnerConfig(system=SYSTEM_COPSE, queries=1, seccomp_variant=variant),
    )
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    assert record.correct
    benchmark.extra_info["simulated_ms"] = record.median_ms
    benchmark.extra_info["comparison_ms"] = round(
        record.phase_ms["comparison"], 3
    )


def test_ablation_seccomp_speedup_report(benchmark, report_sink):
    def collect():
        results = {}
        for name in ("prec8", "prec16"):
            w = workload(name)
            for variant in (VARIANT_ALOUFI, VARIANT_OPTIMIZED):
                results[(name, variant)] = InferenceRunner(
                    w,
                    RunnerConfig(
                        system=SYSTEM_COPSE, queries=1, seccomp_variant=variant
                    ),
                ).run()
        return results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for name in ("prec8", "prec16"):
        aloufi_rec = results[(name, VARIANT_ALOUFI)]
        optimized_rec = results[(name, VARIANT_OPTIMIZED)]
        aloufi = aloufi_rec.phase_ms["comparison"]
        optimized = optimized_rec.phase_ms["comparison"]
        assert optimized < aloufi
        rows.append(f"{name}: comparison {aloufi:.2f} -> {optimized:.2f} ms")
        # The optimized circuit is also shallower, buying noise headroom.
        assert (
            optimized_rec.multiplicative_depth
            < aloufi_rec.multiplicative_depth
        )
    report_sink.append(
        "Ablation: SecComp optimized vs Aloufi\n" + "\n".join(rows)
    )


def _copse_session(name):
    w = workload(name)
    compiled = w.compiled
    ctx = FheContext()
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    spec = maurice.query_spec()
    enc_model = maurice.encrypt_model(ctx, keys.public)
    return w, compiled, ctx, keys, spec, enc_model


def test_ablation_server_side_replication(benchmark, report_sink):
    """Section 7.2.1: hiding K entirely costs ciphertext replication."""
    w, compiled, ctx, keys, spec, enc_model = _copse_session("width78")
    feats = w.query_features(1)[0]
    sally = CopseServer(ctx)
    cost_model = CostModel(EncryptionParams.paper_defaults())

    def run():
        slim = prepare_unreplicated_query(ctx, spec, keys, feats)
        query = replicate_on_server(
            ctx, slim, spec.n_features, spec.max_multiplicity
        )
        query.public_key = keys.public
        return sally.classify(enc_model, query)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bits = ctx.decrypt_bits(result, keys.secret)
    assert bits == w.forest.label_bitvector(feats)

    replicate_ms = cost_model.phase_sequential_ms(ctx.tracker, "server_replicate")
    assert replicate_ms > 0
    benchmark.extra_info["server_replicate_ms"] = round(replicate_ms, 3)
    report_sink.append(
        f"Ablation: server-side replication adds {replicate_ms:.2f} ms "
        f"of ciphertext work per query on width78"
    )


def test_ablation_codebook_shuffle(benchmark):
    """Section 7.2.2: shuffling + padding is one extra depth-1 product."""
    w, compiled, ctx, keys, spec, enc_model = _copse_session("width78")
    feats = w.query_features(1)[0]
    diane = DataOwner(spec, keys)
    sally = CopseServer(ctx)
    query = diane.prepare_query(ctx, feats)
    result = sally.classify(enc_model, query)
    depth_before = result.noise.level

    def run():
        return shuffle_classification(
            ctx,
            result,
            compiled.codebook,
            rng=np.random.default_rng(0),
            pad_to=compiled.num_labels + 4,
            n_label_kinds=len(compiled.label_names),
        )

    shuffled = benchmark.pedantic(run, rounds=1, iterations=1)
    # Depth cost: exactly one more constant product level... which is a
    # const_mult, so the multiplicative level is unchanged.
    assert shuffled.ciphertext.noise.level == depth_before
    bits = ctx.decrypt_bits(shuffled.ciphertext, keys.secret)
    chosen = sorted(shuffled.codebook[i] for i, b in enumerate(bits) if b)
    assert chosen == sorted(w.forest.classify_per_tree(feats))
