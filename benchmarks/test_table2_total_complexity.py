"""Table 2: total evaluation complexity and circuit depth.

Checks the measured end-to-end counts and multiplicative depth against
both our implementation formulas (exact) and the paper's (within the
documented deviations), for every microbenchmark.
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.core.complexity import (
    copse_total_depth,
    impl_total,
    paper_total,
    paper_total_depth,
)

from benchmarks.conftest import MICRO_NAMES, workload


@pytest.mark.parametrize("name", MICRO_NAMES)
def test_table2_totals(benchmark, name):
    w = workload(name)
    runner = InferenceRunner(w, RunnerConfig(system=SYSTEM_COPSE, queries=1))
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)

    m = w.compiled
    p, b, q, d = m.precision, m.branching, m.quantized_branching, m.max_depth

    ours = impl_total(p, q, d, b)
    assert record.op_counts == ours

    papers = paper_total(p, q, d, b)
    # Multiplies: ours differ only by the accumulation strategy (d-1 vs
    # 2d-2) and the q vs q+... bookkeeping; stay within d+2.
    assert abs(ours["multiply"] - papers["multiply"]) <= d + 2
    # Rotations: paper counts q + db; ours additionally pay the b - 1
    # shared pre-rotations of the branch vector and elide the two zero
    # rotations (DESIGN.md section 5).
    assert abs(ours["rotate"] - papers["rotate"]) <= b

    measured_depth = record.multiplicative_depth
    assert measured_depth == copse_total_depth(p, d)
    # Paper depth 2 log p + log d + 2; ours is within 1 (scan/guard fuse).
    assert abs(measured_depth - paper_total_depth(p, d)) <= 1

    benchmark.extra_info["multiply"] = ours["multiply"]
    benchmark.extra_info["depth"] = measured_depth


def test_table2_report(benchmark, report_sink):
    table = benchmark.pedantic(
        experiments.table2, kwargs={"workload_name": "width78"}, rounds=1,
        iterations=1,
    )
    report_sink.append(table.render())
    for row in table.rows:
        op, measured, impl, _ = row
        assert measured == impl, f"{op}: {measured} != {impl}"
