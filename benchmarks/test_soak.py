"""Soak: deadline-aware scheduling under simulated multi-tenant load.

Unlike the figure benchmarks (simulated FHE ms) and backend-speedup
(wall-clock), the artifact here is *scheduling* behavior: p50/p99
latency and deadline-miss rate versus offered load, from the
deterministic virtual-clock simulation in `repro.serve.loadgen`.  The
pytest-benchmark wall-clock number measures the simulator's own cost of
replaying thousands of queries — the acceptance bound is that it stays
trivially cheap.
"""

from repro.bench_harness import experiments

from benchmarks.conftest import QUICK_MODE

SOAK_QUERIES = 600 if QUICK_MODE else 2000


def test_soak_width78(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: experiments.soak(
            workload_name="width78", queries=SOAK_QUERIES
        ),
        rounds=1,
        iterations=1,
    )

    loads = table.column("offered_load")
    assert loads == sorted(loads)
    p50 = table.column("p50_ms")
    p99 = table.column("p99_ms")
    miss = table.column("miss_rate")
    assert all(a <= b for a, b in zip(p50, p99))
    assert all(0.0 <= m <= 1.0 for m in miss)
    # Overload must actually engage admission control.
    assert table.column("rejected")[-1] > 0
    # Determinism: the same seed renders the identical table.
    again = experiments.soak(workload_name="width78", queries=SOAK_QUERIES)
    assert again.render() == table.render()

    benchmark.extra_info["p99_ms_at_0.9_load"] = p99[2]
    benchmark.extra_info["miss_rate_at_max_load"] = miss[-1]
    report_sink.append(table.render())
