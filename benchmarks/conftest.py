"""Shared benchmark configuration.

Each benchmark file regenerates one artifact of the paper's evaluation
(Section 8).  ``benchmark.extra_info`` carries the *simulated* FHE times
(the paper's metric); the pytest-benchmark wall-clock numbers measure the
simulator itself and are not compared to the paper.

Run with::

    pytest benchmarks/ --benchmark-only

The rendered tables are printed once per session at the end (captured by
pytest unless ``-s`` is passed).
"""

from __future__ import annotations

import os

import pytest

from repro.bench_harness.workloads import (
    all_workloads,
    microbenchmark_workloads,
    workload_by_name,
)

#: CI quick mode: set ``REPRO_BENCH_QUICK=1`` to trim the benchmark
#: suite (single query per run, one real-world model) so the tier-1 job
#: stays under the workflow time limit.  "0"/"false"/"no" (and unset)
#: mean full mode.
QUICK_MODE = os.environ.get("REPRO_BENCH_QUICK", "").lower() not in (
    "", "0", "false", "no",
)

#: Query count per benchmark run.  The circuits are input-independent, so
#: simulated times are identical across queries; 2 exercises correctness
#: on distinct inputs while keeping the suite quick.  Set to 27 for the
#: paper's full median protocol.
BENCH_QUERIES = 1 if QUICK_MODE else 2

MICRO_NAMES = [w.name for w in microbenchmark_workloads()]
ALL_NAMES = [w.name for w in all_workloads()]

#: The subset of real-world models exercised per-benchmark (the full set
#: appears in the figure tables, which are computed once per session).
REAL_SUBSET = ["soccer5"] if QUICK_MODE else ["soccer5", "income15"]


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered tables and prints them at the end of the
    session (visible with ``-s``).

    The benchmark suite deliberately does **not** write
    ``benchmark_report.txt`` anymore: the checked-in report is
    regenerated only by the deterministic single entry point
    ``PYTHONPATH=src python -m repro bench report`` (see
    ``repro.bench_harness.report_gen``), so its content can never
    depend on which benchmarks ran or in what order."""
    tables = []
    yield tables
    if tables:
        print("\n\n" + "\n\n".join(tables) + "\n")


def workload(name):
    return workload_by_name(name)
