"""Figure 10: per-phase runtime breakdown of the microbenchmarks.

Paper claims (Section 8.4):
  (a) depth — comparison and reshaping flat; level processing linear in
      the number of levels; aggregation logarithmic and negligible;
  (b) branches — comparison flat; reshaping ~linear in the quantized
      branching; level processing proportional to branch count;
  (c) precision — reshaping/levels/aggregation flat; comparison grows
      superlinearly (p log p).
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE

from benchmarks.conftest import workload


@pytest.mark.parametrize(
    "name",
    ["depth4", "depth5", "depth6", "width55", "width78", "width677",
     "prec8", "prec16"],
)
def test_fig10_phase_breakdown(benchmark, name):
    w = workload(name)
    runner = InferenceRunner(w, RunnerConfig(system=SYSTEM_COPSE, queries=1))
    record = benchmark.pedantic(runner.run, rounds=1, iterations=1)
    assert record.correct
    for phase, ms in record.phase_ms.items():
        benchmark.extra_info[f"{phase}_ms"] = round(ms, 3)


def test_fig10_tables(benchmark, report_sink):
    tables = benchmark.pedantic(
        experiments.figure10, kwargs={"queries": 1}, rounds=1, iterations=1
    )
    for table in tables:
        report_sink.append(table.render())
    depth_table, width_table, prec_table = tables

    # (a) comparison flat; levels linear in depth; accumulation tiny.
    comparisons = depth_table.column("comparison_ms")
    assert max(comparisons) == pytest.approx(min(comparisons), rel=0.01)
    levels = depth_table.column("levels_ms")
    assert levels[2] / levels[0] == pytest.approx(6 / 4, rel=0.05)
    for row in depth_table.rows:
        assert row[4] < 0.1 * row[5]  # accumulate < 10% of total

    # (b) comparison flat; levels proportional to branches.
    comparisons = width_table.column("comparison_ms")
    assert max(comparisons) == pytest.approx(min(comparisons), rel=0.01)
    levels = width_table.column("levels_ms")
    assert levels[2] / levels[0] == pytest.approx(2.0, rel=0.05)

    # (c) only comparison moves with precision, superlinearly.
    comparisons = prec_table.column("comparison_ms")
    assert comparisons[1] / comparisons[0] > 2.0
    for column in ("levels_ms", "accumulate_ms"):
        values = prec_table.column(column)
        assert values[0] == pytest.approx(values[1], rel=0.01)
