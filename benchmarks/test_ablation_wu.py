"""Three-way comparison: COPSE vs Aloufi et al. vs Wu et al.

The paper surveys three approaches to secure decision-forest inference
(Section 2.3.1) but only benchmarks two; having implemented all three,
this benchmark puts them side by side on the axes where they differ:

* simulated per-query compute time,
* communication (messages and ciphertext volume per query),
* whether the server may hold the model in plaintext (Wu et al.'s
  restriction, which COPSE lifts),
* scaling in tree depth (Wu's padded comparisons are exponential).
"""

import pytest

from repro.baseline.wu_ot import wu_inference
from repro.bench_harness.report import Table
from repro.bench_harness.runner import (
    InferenceRunner,
    RunnerConfig,
    SYSTEM_BASELINE,
    SYSTEM_COPSE,
)
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams

from benchmarks.conftest import workload

WU_PHASES = ("wu_comparisons", "wu_transfer")


def _wu_record(w, feats):
    outcome = wu_inference(w.forest, feats, precision=w.precision, seed=0)
    assert outcome.labels == w.forest.classify_per_tree(feats)
    cost_model = CostModel(EncryptionParams.paper_defaults())
    ms = sum(
        cost_model.phase_sequential_ms(outcome.tracker, phase)
        for phase in WU_PHASES
    )
    return outcome, ms


@pytest.mark.parametrize("name", ["width55", "width78"])
def test_wu_inference_bench(benchmark, name):
    w = workload(name)
    feats = w.query_features(1)[0]

    def run():
        return wu_inference(w.forest, feats, precision=w.precision, seed=0)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.labels == w.forest.classify_per_tree(feats)
    benchmark.extra_info["messages"] = outcome.transcript.rounds()


def test_three_way_comparison(benchmark, report_sink):
    def build_table():
        table = Table(
            title="Three-way comparison (per query, single-threaded)",
            columns=[
                "system",
                "simulated_ms",
                "messages",
                "model_plaintext_on_server",
            ],
        )
        w = workload("width78")
        feats = w.query_features(1)[0]

        copse = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_COPSE, queries=1)
        ).run()
        table.add_row("copse", round(copse.median_ms, 1), 3, "no (encrypted)")

        aloufi = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_BASELINE, queries=1)
        ).run()
        table.add_row(
            "aloufi", round(aloufi.median_ms, 1), 3, "no (encrypted)"
        )

        wu_outcome, wu_ms = _wu_record(w, feats)
        table.add_row(
            "wu-ot",
            round(wu_ms, 1),
            wu_outcome.transcript.rounds(),
            "yes (required)",
        )
        return table, copse, aloufi, wu_ms, wu_outcome

    table, copse, aloufi, wu_ms, wu_outcome = benchmark.pedantic(
        build_table, rounds=1, iterations=1
    )
    report_sink.append(table.render())

    # COPSE beats the FHE baseline outright.
    assert copse.median_ms < aloufi.median_ms
    # On a small shallow model Wu's AHE protocol is cost-competitive —
    # its drawbacks are elsewhere: it is chattier (feature upload,
    # blinded comparisons, two OT messages per tree) ...
    assert wu_outcome.transcript.rounds() > 3
    # ... it requires the server to hold the model in plaintext (see the
    # table), and its comparison work is exponential in depth, so COPSE
    # wins clearly at real-world scale:
    deep = workload("soccer15")
    deep_feats = deep.query_features(1)[0]
    copse_deep = InferenceRunner(
        deep, RunnerConfig(system=SYSTEM_COPSE, queries=1)
    ).run()
    _, wu_deep_ms = _wu_record(deep, deep_feats)
    assert copse_deep.median_ms < wu_deep_ms
    report_sink.append(
        f"Depth-8 real-world crossover (soccer15): copse "
        f"{copse_deep.median_ms:.0f} ms vs wu-ot {wu_deep_ms:.0f} ms"
    )


def test_wu_depth_scaling(benchmark, report_sink):
    """Wu's padded comparisons grow ~2x per depth level; COPSE's grow
    linearly (Figure 10a) — the crossover the paper's scalability
    argument rests on."""
    import numpy as np

    from repro.forest.synthetic import random_forest

    def measure():
        rows = []
        for depth in (4, 6, 8):
            forest = random_forest(
                np.random.default_rng(depth), [12, 12], max_depth=depth
            )
            feats = [50, 200]
            outcome = wu_inference(forest, feats, seed=0)
            assert outcome.labels == forest.classify_per_tree(feats)
            comparisons = outcome.transcript.messages[1].ciphertexts
            rows.append((depth, comparisons))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    comparisons = {depth: n for depth, n in rows}
    # Exponential blowup: each +2 depth multiplies node count by ~4
    # (trees are pinned to max depth by the generator).
    assert comparisons[6] > 2 * comparisons[4]
    assert comparisons[8] > 2 * comparisons[6]
    report_sink.append(
        "Wu et al. padded comparisons vs depth: "
        + ", ".join(f"d={d}: {n}" for d, n in rows)
    )
