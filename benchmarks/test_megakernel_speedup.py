"""Megakernel speedup: the zero-dispatch kernel vs the tape loop, wall clock.

The acceptance artifact for the megakernel tier: on width78 batched
serve under the vector backend, the megakernel (vectorized dependency
segments over one preallocated register plane, capture/replay
bookkeeping, bulk model adoption) targets >= 2x wall-clock over the
compiled tape with identical decrypted bits and identical op counts.
Like tape-speedup, the reported number is real wall clock of the
simulator, so the assertion keeps a flake margin below the target while
the report carries the measured value.
"""

from repro.bench_harness import experiments

from benchmarks.conftest import QUICK_MODE


def test_megakernel_speedup_width78(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: experiments.megakernel_speedup(
            workload_name="width78", repeats=3 if QUICK_MODE else 5
        ),
        rounds=1,
        iterations=1,
    )

    # Both engines agreed with the plaintext oracle (and therefore with
    # each other) on every decrypted label.
    assert all(ok == "ok" for ok in table.column("oracle"))

    rows = {r[0]: r for r in table.rows}
    speedup = rows["megakernel"][2]
    # Target >= 2x; assert a generous margin so a loaded CI machine
    # cannot flake the suite while still locking that the megakernel is
    # measurably faster, never slower.
    assert speedup > 1.3, f"megakernel only {speedup:.2f}x over tape"
    # The replayed bookkeeping is byte-identical, so the note carries
    # the op-count parity claim verbatim.
    assert any("op counts identical" in n for n in table.notes)

    benchmark.extra_info["megakernel_speedup_vs_tape"] = round(speedup, 2)
    report_sink.append(table.render())
