"""Tape speedup: the compiled-tape engine vs the plan engine, wall clock.

The ISSUE 5 acceptance artifact: on width78 batched serve under the
vector backend, the compiled tape (linearized instructions, scheduled
rotations, register reuse, fused kernels) targets >= 1.5x wall-clock
over the plan engine with identical decrypted bits and strictly fewer
rotations.  Like backend-speedup, the reported number is real wall
clock of the simulator, so the assertion keeps a flake margin below the
target while the report carries the measured value.
"""

from repro.bench_harness import experiments

from benchmarks.conftest import QUICK_MODE


def test_tape_speedup_width78(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: experiments.tape_speedup(
            workload_name="width78", repeats=3 if QUICK_MODE else 5
        ),
        rounds=1,
        iterations=1,
    )

    # Every engine row agreed with the plaintext oracle (and therefore
    # with every other engine).
    assert all(ok == "ok" for ok in table.column("oracle"))

    rows = {r[0]: r for r in table.rows}
    plan_rot, tape_rot = rows["plan"][1], rows["tape"][1]
    # The scheduler's claim is exact, not statistical: strictly fewer
    # rotations than the plan baseline.
    assert tape_rot < plan_rot, (tape_rot, plan_rot)

    tape_speedup = rows["tape"][3]
    # Target >= 1.5x; assert a generous margin so a loaded CI machine
    # cannot flake the suite while still locking that the tape engine is
    # measurably faster, never slower.
    assert tape_speedup > 1.15, f"tape only {tape_speedup:.2f}x over plan"
    # Fusion must contribute: the fused tape is never slower than the
    # de-fused tape by more than the flake margin.
    defused_speedup = rows["tape (de-fused)"][3]
    assert tape_speedup > defused_speedup * 0.85

    benchmark.extra_info["tape_speedup_vs_plan"] = round(tape_speedup, 2)
    benchmark.extra_info["rotations_plan_to_tape"] = f"{plan_rot}->{tape_rot}"
    report_sink.append(table.render())
