"""Ablation: the EVA-style IR optimizer vs the hand-scheduled runtime.

The paper's stated future work is lowering COPSE onto an optimizing FHE
IR.  This benchmark measures what that buys on our substrate: the
optimizer's CSE discovers that the cyclic extensions of the rotated
branch vector are shared across all ``d`` level matrices — something the
hand-written runtime recomputes — cutting the rotation count below even
the paper's ``q + d*b``.
"""

import pytest

from repro.bench_harness.runner import InferenceRunner, RunnerConfig, SYSTEM_COPSE
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind
from repro.ir import (
    analyze_counts,
    analyze_depth,
    build_inference_graph,
    ir_secure_inference,
    optimize,
)
from repro.ir.nodes import IrOp

from benchmarks.conftest import workload


@pytest.mark.parametrize("name", ["width78", "depth6"])
def test_ablation_ir_vs_runtime(benchmark, name, report_sink):
    w = workload(name)
    compiled = w.compiled
    feats = w.query_features(1)[0]

    graph = optimize(build_inference_graph(compiled))

    def run():
        return ir_secure_inference(compiled, feats, graph=graph)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.result.bitvector == w.forest.label_bitvector(feats)

    # Direct runtime for comparison.
    runtime_record = InferenceRunner(
        w, RunnerConfig(system=SYSTEM_COPSE, queries=1)
    ).run()

    cost_model = CostModel(EncryptionParams.paper_defaults())
    ir_rotations = outcome.tracker.phase_stats("ir_inference").counts.get(
        OpKind.ROTATE, 0
    )
    runtime_rotations = runtime_record.op_counts.get("rotate", 0)
    ir_ms = cost_model.phase_sequential_ms(outcome.context.tracker, "ir_inference")

    # The optimizer strictly reduces rotation work, at unchanged depth.
    assert ir_rotations < runtime_rotations
    assert (
        outcome.tracker.multiplicative_depth()
        == runtime_record.multiplicative_depth
    )
    assert ir_ms < runtime_record.median_ms

    benchmark.extra_info["ir_rotations"] = ir_rotations
    benchmark.extra_info["runtime_rotations"] = runtime_rotations
    benchmark.extra_info["ir_simulated_ms"] = round(ir_ms, 2)
    benchmark.extra_info["runtime_simulated_ms"] = round(
        runtime_record.median_ms, 2
    )
    report_sink.append(
        f"Ablation IR ({name}): rotations {runtime_rotations} -> "
        f"{ir_rotations}, simulated {runtime_record.median_ms:.1f} -> "
        f"{ir_ms:.1f} ms"
    )


def test_ir_optimizer_statistics(benchmark):
    """Optimizer effect on the raw graph: extensions collapse d*b -> b."""
    w = workload("width78")
    compiled = w.compiled

    def build_and_optimize():
        raw = build_inference_graph(compiled)
        return raw, optimize(raw)

    raw, opt = benchmark.pedantic(build_and_optimize, rounds=1, iterations=1)
    d, b = compiled.max_depth, compiled.branching
    assert analyze_counts(raw)[IrOp.EXTEND] == d * b
    assert analyze_counts(opt)[IrOp.EXTEND] == b
    assert analyze_depth(raw) == analyze_depth(opt)
    assert opt.num_nodes < raw.num_nodes
    benchmark.extra_info["raw_nodes"] = raw.num_nodes
    benchmark.extra_info["optimized_nodes"] = opt.num_nodes
