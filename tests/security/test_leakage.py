"""Tests reproducing the paper's leakage Tables 3 and 4."""

import pytest

from repro.errors import LeakageError
from repro.core.compiler import CopseCompiler
from repro.core.runtime import ModelOwner, secure_inference
from repro.fhe.context import FheContext
from repro.security.leakage import (
    EVERYTHING,
    STAT_B,
    STAT_D,
    STAT_K,
    STAT_Q,
    observed_by_data_owner,
    observed_by_server,
    scenario_leakage,
)
from repro.security.parties import (
    Party,
    SCENARIO_CLIENT_EVAL,
    SCENARIO_MODEL_ON_SERVER,
    SCENARIO_OFFLOAD,
    SCENARIO_THREE_PARTY,
    SCENARIO_THREE_PARTY_SD,
    SCENARIO_THREE_PARTY_SM,
    Scenario,
    scenario_by_name,
)


class TestTable3:
    def test_offload_row(self):
        report = scenario_leakage(SCENARIO_OFFLOAD)
        assert report.to_server() == {STAT_Q, STAT_B, STAT_D}
        assert report.to_model_owner() == set()
        assert report.to_data_owner() == set()

    def test_model_on_server_row(self):
        report = scenario_leakage(SCENARIO_MODEL_ON_SERVER)
        assert report.to_server() == set()
        assert report.to_model_owner() == set()
        assert report.to_data_owner() == {STAT_K, STAT_B}

    def test_client_eval_row(self):
        report = scenario_leakage(SCENARIO_CLIENT_EVAL)
        assert report.to_server() == {STAT_Q, STAT_B, STAT_K, STAT_D}
        assert report.to_data_owner() == {STAT_Q, STAT_B, STAT_K}


class TestTable4:
    def test_no_collusion_row(self):
        report = scenario_leakage(SCENARIO_THREE_PARTY)
        assert report.to_server() == {STAT_Q, STAT_B, STAT_D, STAT_K}
        assert report.to_model_owner() == set()
        assert report.to_data_owner() == {STAT_K, STAT_B}

    def test_collusion_with_model_owner(self):
        report = scenario_leakage(SCENARIO_THREE_PARTY_SM)
        assert report.to_server() == {EVERYTHING}
        assert report.to_model_owner() == {EVERYTHING}
        assert report.to_data_owner() == {STAT_K, STAT_B}

    def test_collusion_with_data_owner(self):
        report = scenario_leakage(SCENARIO_THREE_PARTY_SD)
        assert report.to_server() == {EVERYTHING}
        assert report.to_model_owner() == set()
        assert report.to_data_owner() == {EVERYTHING}


class TestScenarioModel:
    def test_physically_same(self):
        assert SCENARIO_OFFLOAD.physically_same(
            Party.MODEL_OWNER, Party.DATA_OWNER
        )
        assert not SCENARIO_OFFLOAD.physically_same(
            Party.MODEL_OWNER, Party.SERVER
        )
        assert SCENARIO_THREE_PARTY.is_three_party

    def test_plaintext_model_flag(self):
        assert SCENARIO_MODEL_ON_SERVER.model_is_plaintext_on_server
        assert not SCENARIO_OFFLOAD.model_is_plaintext_on_server

    def test_lookup_by_name(self):
        assert scenario_by_name("S, M=D") is SCENARIO_OFFLOAD
        with pytest.raises(LeakageError):
            scenario_by_name("nonsense")

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(LeakageError):
            Scenario(name="bad", merged=(Party.SERVER,))
        with pytest.raises(LeakageError):
            Scenario(
                name="bad",
                merged=(Party.SERVER, Party.MODEL_OWNER),
                collusion="S_with_M",
            )
        with pytest.raises(LeakageError):
            Scenario(name="bad", collusion="martians")

    def test_unknown_two_party_scenario_has_no_row(self):
        fake = Scenario(name="S=X, Y", merged=(Party.SERVER, Party.DATA_OWNER))
        with pytest.raises(LeakageError):
            scenario_leakage(fake)


class TestMechanicalLeakage:
    """The structural leakage the evaluator actually observes must equal
    the model statistics Table 3 says it learns — and nothing more."""

    def test_server_observations_match_model_stats(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        ctx = FheContext()
        keys = ctx.keygen()
        enc = ModelOwner(compiled).encrypt_model(ctx, keys.public)
        observed = observed_by_server(enc)
        assert observed[STAT_Q] == example_forest.quantized_branching
        assert observed[STAT_B] == example_forest.branching
        assert observed[STAT_D] == example_forest.max_depth
        # Exactly the Table 3 offload-row leakage, nothing else.
        assert set(observed) == scenario_leakage(SCENARIO_OFFLOAD).to_server()

    def test_data_owner_observations(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        outcome = secure_inference(compiled, [10, 10])
        observed = observed_by_data_owner(
            len(outcome.result.bitvector), compiled.max_multiplicity
        )
        assert observed[STAT_K] == example_forest.max_multiplicity
        assert observed["result_slots"] == example_forest.num_leaves
