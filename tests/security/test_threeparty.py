"""Tests for threshold FHE and the three-party protocol (Section 7.1)."""

import numpy as np
import pytest

from repro.errors import KeyMismatchError, RuntimeProtocolError
from repro.core.compiler import CopseCompiler
from repro.core.threeparty import (
    DIANE,
    MAURICE,
    SALLY,
    three_party_inference,
)
from repro.fhe.context import FheContext
from repro.fhe.multikey import (
    combine_partials,
    partial_decrypt,
    threshold_keygen,
)
from repro.forest.synthetic import random_forest


@pytest.fixture
def joint_setup():
    ctx = FheContext()
    joint = threshold_keygen(ctx, share_count=2)
    ct = ctx.encrypt([1, 0, 1, 1, 0], joint.public)
    return ctx, joint, ct


class TestThresholdKeys:
    def test_keygen_share_structure(self, joint_setup):
        _, joint, _ = joint_setup
        assert joint.share_count == 2
        assert [s.index for s in joint.shares] == [0, 1]
        assert all(s.key_id == joint.public.key_id for s in joint.shares)

    def test_minimum_share_count(self):
        ctx = FheContext()
        with pytest.raises(RuntimeProtocolError):
            threshold_keygen(ctx, share_count=1)

    def test_three_way_sharing(self):
        ctx = FheContext()
        joint = threshold_keygen(ctx, share_count=3)
        ct = ctx.encrypt([1, 1, 0], joint.public)
        partials = [
            partial_decrypt(ctx, ct, share) for share in joint.shares
        ]
        assert combine_partials(ct, partials) == [1, 1, 0]


class TestPartialDecryption:
    def test_full_set_reconstructs(self, joint_setup):
        ctx, joint, ct = joint_setup
        partials = [
            partial_decrypt(ctx, ct, share) for share in joint.shares
        ]
        assert combine_partials(ct, partials) == [1, 0, 1, 1, 0]

    def test_reconstruction_after_evaluation(self, joint_setup):
        ctx, joint, ct = joint_setup
        other = ctx.encrypt([1, 1, 1, 0, 0], joint.public)
        product = ctx.multiply(ct, other)
        partials = [
            partial_decrypt(ctx, product, share) for share in joint.shares
        ]
        assert combine_partials(product, partials) == [1, 0, 1, 0, 0]

    def test_single_partial_does_not_reveal_payload(self, joint_setup):
        # A wide payload keeps this statistical check deterministic in
        # practice: each fragment is payload ^ hash-derived-pad (or the
        # pad itself), so a w-bit payload collides with probability
        # 2**-w per share — at 5 bits that flaked ~6% of full-suite
        # runs (the pad seed shifts with the global ciphertext counter).
        ctx, joint, _ = joint_setup
        payload = [1, 0] * 16
        ct = ctx.encrypt(payload, joint.public)
        for share in joint.shares:
            partial = partial_decrypt(ctx, ct, share)
            assert list(partial.fragment) != payload

    def test_missing_share_rejected(self, joint_setup):
        ctx, joint, ct = joint_setup
        only_one = [partial_decrypt(ctx, ct, joint.shares[0])]
        with pytest.raises(RuntimeProtocolError, match="missing shares"):
            combine_partials(ct, only_one)

    def test_duplicate_share_rejected(self, joint_setup):
        ctx, joint, ct = joint_setup
        p = partial_decrypt(ctx, ct, joint.shares[0])
        with pytest.raises(RuntimeProtocolError, match="duplicate"):
            combine_partials(ct, [p, p])

    def test_wrong_key_share_rejected(self, joint_setup):
        ctx, joint, ct = joint_setup
        other_joint = threshold_keygen(ctx, share_count=2)
        with pytest.raises(KeyMismatchError):
            partial_decrypt(ctx, ct, other_joint.shares[0])

    def test_partial_for_other_ciphertext_rejected(self, joint_setup):
        ctx, joint, ct = joint_setup
        other_ct = ctx.encrypt([0, 0, 0, 0, 0], joint.public)
        partials = [
            partial_decrypt(ctx, other_ct, joint.shares[0]),
            partial_decrypt(ctx, ct, joint.shares[1]),
        ]
        with pytest.raises(RuntimeProtocolError, match="different ciphertext"):
            combine_partials(ct, partials)

    def test_empty_partials_rejected(self, joint_setup):
        _, _, ct = joint_setup
        with pytest.raises(RuntimeProtocolError):
            combine_partials(ct, [])

    def test_single_key_decrypt_does_not_work_on_joint(self, joint_setup):
        """No complete secret key exists for a joint key."""
        ctx, joint, ct = joint_setup
        outsider = ctx.keygen()
        with pytest.raises(KeyMismatchError):
            ctx.decrypt(ct, outsider.secret)


class TestThreePartyProtocol:
    @pytest.fixture(scope="class")
    def outcome(self):
        forest = random_forest(
            np.random.default_rng(3), [7, 8], max_depth=5
        )
        compiled = CopseCompiler(precision=8).compile(forest)
        return forest, three_party_inference(compiled, [42, 200])

    def test_correctness(self, outcome):
        forest, out = outcome
        assert out.result.bitvector == forest.label_bitvector([42, 200])
        assert out.result.chosen_labels == forest.classify_per_tree([42, 200])

    def test_transcript_structure(self, outcome):
        _, out = outcome
        kinds = out.transcript.kinds()
        assert kinds == [
            "threshold-keygen",
            "threshold-keygen-ack",
            "encrypted-model",
            "encrypted-query",
            "encrypted-result",
            "encrypted-result",
            "partial-decryption",
        ]
        # The wrapper's price: more messages than the 2-party flow's 3.
        assert out.transcript.rounds() == 7

    def test_transcript_ciphertext_volumes(self, outcome):
        forest, out = outcome
        p, q = 8, forest.quantized_branching
        b, d = forest.branching, forest.max_depth
        assert out.transcript.ciphertexts_sent(MAURICE) == (
            p + q + d * (b + 1) + 1  # model + partial decryption
        )
        assert out.transcript.ciphertexts_sent(DIANE) == p
        assert out.transcript.ciphertexts_sent(SALLY) == 2

    def test_no_single_party_can_decrypt(self, outcome):
        _, out = outcome
        ctx = out.context
        ct = out.encrypted_result
        # Sally: no shares at all.
        sally_keys = ctx.keygen()
        with pytest.raises(KeyMismatchError):
            ctx.decrypt(ct, sally_keys.secret)
        # Diane alone: one partial is not enough.
        diane_partial = partial_decrypt(ctx, ct, out.joint_key.shares[1])
        with pytest.raises(RuntimeProtocolError):
            combine_partials(ct, [diane_partial])

    def test_collusion_with_one_shareholder_insufficient(self, outcome):
        """Even Sally plus one shareholder cannot open the result — it
        takes both shareholders' partials (Table 4: full compromise needs
        the colluding pair to include the *other* data party's share)."""
        _, out = outcome
        ctx = out.context
        ct = out.encrypted_result
        maurice_partial = partial_decrypt(ctx, ct, out.joint_key.shares[0])
        with pytest.raises(RuntimeProtocolError, match="missing"):
            combine_partials(ct, [maurice_partial])

    def test_wrong_arity_rejected(self):
        forest = random_forest(np.random.default_rng(4), [5, 5], max_depth=4)
        compiled = CopseCompiler(precision=8).compile(forest)
        with pytest.raises(RuntimeProtocolError):
            three_party_inference(compiled, [1, 2, 3])

    def test_many_inputs(self):
        forest = random_forest(np.random.default_rng(5), [6, 6], max_depth=4)
        compiled = CopseCompiler(precision=8).compile(forest)
        rng = np.random.default_rng(6)
        for _ in range(4):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            out = three_party_inference(compiled, feats)
            assert out.result.bitvector == forest.label_bitvector(feats)
