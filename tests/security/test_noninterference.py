"""Tests for the noninterference (input-independence) property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LeakageError
from repro.core.compiler import CopseCompiler
from repro.forest.synthetic import random_forest
from repro.security.noninterference import (
    check_noninterference,
    execution_trace,
)


class TestExecutionTrace:
    def test_trace_nonempty_and_structured(self, compiled_example):
        trace = execution_trace(compiled_example, [10, 10])
        assert len(trace) > 50
        kinds = {entry[0] for entry in trace}
        assert "multiply" in kinds and "encrypt" in kinds

    def test_trace_identical_for_different_inputs(self, compiled_example):
        a = execution_trace(compiled_example, [0, 0])
        b = execution_trace(compiled_example, [255, 255])
        assert a == b

    def test_trace_differs_between_models(self, example_forest):
        c8 = CopseCompiler(precision=8).compile(example_forest)
        c9 = CopseCompiler(precision=9).compile(example_forest)
        assert execution_trace(c8, [1, 1]) != execution_trace(c9, [1, 1])

    def test_plaintext_model_trace_also_input_independent(
        self, compiled_example
    ):
        a = execution_trace(compiled_example, [3, 200], encrypted_model=False)
        b = execution_trace(compiled_example, [250, 7], encrypted_model=False)
        assert a == b


class TestCheckNoninterference:
    def test_passes_on_copse(self, compiled_example):
        check_noninterference(
            compiled_example, [[0, 0], [100, 50], [255, 255]]
        )

    def test_needs_two_inputs(self, compiled_example):
        with pytest.raises(LeakageError):
            check_noninterference(compiled_example, [[0, 0]])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_property_random_models_and_inputs(self, seed):
        forest = random_forest(
            np.random.default_rng(seed), [5, 5], max_depth=4, n_features=2
        )
        compiled = CopseCompiler(precision=8).compile(forest)
        rng = np.random.default_rng(seed + 1)
        inputs = [
            [int(v) for v in rng.integers(0, 256, 2)] for _ in range(3)
        ]
        check_noninterference(compiled, inputs)

    def test_baseline_is_also_input_independent(self, example_forest):
        """The baseline pads out every path too — its trace must not
        depend on the features either."""
        from repro.baseline.runtime import baseline_inference

        traces = []
        for feats in ([0, 0], [255, 1], [40, 200]):
            out = baseline_inference(example_forest, feats)
            traces.append(out.tracker.trace())
        assert traces[0] == traces[1] == traces[2]
