"""Tests for the Section 4.1.1 model analysis."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.core.analysis import SENTINEL_THRESHOLD, ModelAnalysis
from repro.forest.synthetic import random_forest


@pytest.fixture
def analysis(example_forest):
    return ModelAnalysis(example_forest)


class TestStatistics:
    def test_basic_stats(self, analysis):
        assert analysis.branching == 6
        assert analysis.num_labels == 8
        assert analysis.max_multiplicity == 3
        assert analysis.quantized_branching == 6
        assert analysis.max_depth == 3

    def test_branch_levels(self, analysis):
        # Tree 1 preorder: d0 (level 3), d1 (2), d2 (1), d3 (1);
        # tree 2: root (2), inner (1).
        assert [analysis.branch_level(i) for i in range(6)] == [3, 2, 1, 1, 2, 1]

    def test_codebook(self, analysis, example_forest):
        assert analysis.codebook() == [
            leaf.label_index for leaf in example_forest.all_leaves()
        ]

    def test_branch_width(self, analysis):
        assert analysis.branch_width(0) == 5  # tree-1 root spans 5 leaves
        assert analysis.branch_width(2) == 2


class TestThresholdSlots:
    def test_grouped_by_feature(self, analysis, example_forest):
        K = analysis.max_multiplicity
        for i in range(analysis.branching):
            feature = analysis.branch(i).feature
            slot = analysis.threshold_slot(i)
            assert feature * K <= slot < (feature + 1) * K

    def test_slots_unique(self, analysis):
        slots = [
            analysis.threshold_slot(i) for i in range(analysis.branching)
        ]
        assert len(set(slots)) == len(slots)

    def test_padded_thresholds(self, analysis):
        padded = analysis.padded_thresholds()
        assert len(padded) == analysis.quantized_branching
        for i in range(analysis.branching):
            slot = analysis.threshold_slot(i)
            assert padded[slot] == analysis.branch(i).threshold

    def test_sentinel_fills_gaps(self):
        forest = random_forest(
            np.random.default_rng(0), [7], max_depth=4, n_features=2
        )
        analysis = ModelAnalysis(forest)
        padded = analysis.padded_thresholds()
        used = {analysis.threshold_slot(i) for i in range(analysis.branching)}
        for slot, value in enumerate(padded):
            if slot not in used:
                assert value == SENTINEL_THRESHOLD

    def test_replicated_features(self, analysis):
        assert analysis.replicated_features([7, 9]) == [7, 7, 7, 9, 9, 9]

    def test_replicated_features_arity_checked(self, analysis):
        with pytest.raises(CompileError):
            analysis.replicated_features([7])


class TestLevelSelection:
    def test_every_row_selects_an_ancestor(self, analysis, example_forest):
        for level in range(1, analysis.max_depth + 1):
            for label_idx, sel in enumerate(analysis.selected_branches(level)):
                downstream = [
                    p for p, _ in example_forest.trees[0].downstream_labels(
                        analysis.branch(sel.branch_index)
                    )
                ] if sel.branch_index < 4 else None
                # The selected branch must be an ancestor: the label is in
                # its downstream set (checked through the analysis itself).
                assert label_idx in analysis._downstream(sel.branch_index)

    def test_exact_level_preferred(self, analysis):
        # At level 1, every label whose ancestors include a level-1 branch
        # must select it.
        for label_idx, sel in enumerate(analysis.selected_branches(1)):
            ancestor_levels = {
                analysis.branch_level(bi)
                for bi, _ in analysis._ancestors[label_idx]
            }
            if 1 in ancestor_levels:
                assert analysis.branch_level(sel.branch_index) == 1

    def test_every_branch_appears_in_some_level(self, analysis):
        seen = set()
        for level in range(1, analysis.max_depth + 1):
            for sel in analysis.selected_branches(level):
                seen.add(sel.branch_index)
        assert seen == set(range(analysis.branching))

    def test_unique_branch_per_level_label(self, analysis):
        """The paper's key property: for a given level and label there is
        a unique controlling branch — selection is deterministic."""
        for level in range(1, analysis.max_depth + 1):
            a = analysis.selected_branches(level)
            b = analysis.selected_branches(level)
            assert a == b

    def test_level_out_of_range(self, analysis):
        with pytest.raises(CompileError):
            analysis.selected_branches(0)
        with pytest.raises(CompileError):
            analysis.selected_branches(analysis.max_depth + 1)

    def test_shallow_label_reuses_lower_branch(self):
        """A label shallower than the forest depth reuses its deepest
        not-exceeding ancestor at intermediate levels (the d4 case from
        Figure 1 of the paper)."""
        forest = random_forest(
            np.random.default_rng(1), [4, 8], max_depth=5, n_features=2
        )
        analysis = ModelAnalysis(forest)
        for level in range(1, analysis.max_depth + 1):
            for label_idx, sel in enumerate(analysis.selected_branches(level)):
                lvl = analysis.branch_level(sel.branch_index)
                ancestor_levels = sorted(
                    analysis.branch_level(bi)
                    for bi, _ in analysis._ancestors[label_idx]
                )
                if level in ancestor_levels:
                    assert lvl == level
                else:
                    below = [l for l in ancestor_levels if l < level]
                    if below:
                        assert lvl == max(below)
                    else:
                        assert lvl == min(ancestor_levels)


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_on_random_forests(self, seed):
        forest = random_forest(
            np.random.default_rng(seed),
            branches_per_tree=[6, 9],
            max_depth=5,
            n_features=3,
        )
        analysis = ModelAnalysis(forest)
        assert analysis.quantized_branching >= analysis.branching
        padded = analysis.padded_thresholds()
        assert len(padded) == analysis.quantized_branching
        # Level matrices' defining property: one selected ancestor branch
        # per (level, label), and coverage of all branches.
        seen = set()
        for level in range(1, analysis.max_depth + 1):
            selections = analysis.selected_branches(level)
            assert len(selections) == analysis.num_labels
            for label_idx, sel in enumerate(selections):
                assert label_idx in analysis._downstream(sel.branch_index)
                seen.add(sel.branch_index)
        assert seen == set(range(analysis.branching))
