"""Tests for the SecComp comparison circuit (both variants)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompileError
from repro.core.seccomp import (
    VARIANT_ALOUFI,
    VARIANT_OPTIMIZED,
    seccomp_add_count,
    seccomp_const_add_count,
    seccomp_depth,
    seccomp_multiply_count,
    secure_compare,
)
from repro.fhe.context import FheContext
from repro.fhe.simd import to_bitplanes
from repro.fhe.tracker import OpKind


def _compare(ctx, keys, xs, ys, precision, variant, plain_y=False):
    x_planes_arr = to_bitplanes(xs, precision)
    y_planes_arr = to_bitplanes(ys, precision)
    x_planes = [
        ctx.encrypt(x_planes_arr[i], keys.public) for i in range(precision)
    ]
    if plain_y:
        y_planes = [ctx.encode(y_planes_arr[i]) for i in range(precision)]
    else:
        y_planes = [
            ctx.encrypt(y_planes_arr[i], keys.public) for i in range(precision)
        ]
    not_one = None
    if variant == VARIANT_ALOUFI:
        not_one = ctx.encrypt([1] * len(xs), keys.public)
    result = secure_compare(ctx, x_planes, y_planes, variant, not_one)
    return ctx.decrypt_bits(result, keys.secret)


@pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
class TestCorrectness:
    def test_basic_cases(self, ctx, keys, variant):
        xs = [0, 5, 5, 255, 100]
        ys = [1, 5, 6, 0, 200]
        expected = [1 if x < y else 0 for x, y in zip(xs, ys)]
        assert _compare(ctx, keys, xs, ys, 8, variant) == expected

    def test_plain_thresholds(self, ctx, keys, variant):
        xs = [3, 200, 17]
        ys = [4, 100, 17]
        expected = [1, 0, 0]
        assert _compare(ctx, keys, xs, ys, 8, variant, plain_y=True) == expected

    def test_single_bit_precision(self, ctx, keys, variant):
        xs = [0, 0, 1, 1]
        ys = [0, 1, 0, 1]
        assert _compare(ctx, keys, xs, ys, 1, variant) == [0, 1, 0, 0]

    def test_sixteen_bit_precision(self, ctx, keys, variant):
        xs = [0, 40000, 65535, 1]
        ys = [65535, 39999, 65535, 2]
        assert _compare(ctx, keys, xs, ys, 16, variant) == [1, 0, 0, 1]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=16,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_numeric_comparison(self, variant, pairs):
        ctx = FheContext()
        keys = ctx.keygen()
        xs = [a for a, _ in pairs]
        ys = [b for _, b in pairs]
        expected = [1 if x < y else 0 for x, y in zip(xs, ys)]
        assert _compare(ctx, keys, xs, ys, 8, variant) == expected

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_odd_precisions(self, variant, precision, seed):
        rng = np.random.default_rng(seed)
        limit = 1 << precision
        xs = [int(v) for v in rng.integers(0, limit, 6)]
        ys = [int(v) for v in rng.integers(0, limit, 6)]
        ctx = FheContext()
        keys = ctx.keygen()
        expected = [1 if x < y else 0 for x, y in zip(xs, ys)]
        assert _compare(ctx, keys, xs, ys, precision, variant) == expected


class TestOperationCounts:
    @pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
    @pytest.mark.parametrize("precision", [1, 2, 4, 8, 16])
    def test_measured_counts_match_formulas(self, variant, precision):
        ctx = FheContext()
        keys = ctx.keygen()
        xs = [0] * 4
        ys = [1] * 4
        x_planes = [
            ctx.encrypt(row, keys.public)
            for row in to_bitplanes(xs, precision)
        ]
        y_planes = [
            ctx.encrypt(row, keys.public)
            for row in to_bitplanes(ys, precision)
        ]
        not_one = (
            ctx.encrypt([1] * 4, keys.public)
            if variant == VARIANT_ALOUFI
            else None
        )
        before = {
            kind: ctx.tracker.count(kind)
            for kind in (OpKind.ADD, OpKind.CONST_ADD, OpKind.MULTIPLY)
        }
        secure_compare(ctx, x_planes, y_planes, variant, not_one)
        measured = {
            kind: ctx.tracker.count(kind) - before[kind]
            for kind in before
        }
        assert measured[OpKind.ADD] == seccomp_add_count(precision, variant)
        assert measured[OpKind.CONST_ADD] == seccomp_const_add_count(
            precision, variant
        )
        assert measured[OpKind.MULTIPLY] == seccomp_multiply_count(
            precision, variant
        )

    def test_paper_table1a_counts(self):
        """The Aloufi variant reproduces Table 1a exactly (p a power of 2)."""
        import math

        for p in (2, 4, 8, 16, 32):
            log_p = int(math.log2(p))
            assert seccomp_add_count(p, VARIANT_ALOUFI) == 4 * p - 2
            assert seccomp_const_add_count(p, VARIANT_ALOUFI) == p
            assert (
                seccomp_multiply_count(p, VARIANT_ALOUFI)
                == p * log_p + 3 * p - 2
            )
            assert seccomp_depth(p, VARIANT_ALOUFI) == 2 * log_p + 1

    def test_optimized_is_cheaper(self):
        for p in (2, 4, 8, 16):
            assert seccomp_multiply_count(p, VARIANT_OPTIMIZED) < (
                seccomp_multiply_count(p, VARIANT_ALOUFI)
            )
            assert seccomp_depth(p, VARIANT_OPTIMIZED) < seccomp_depth(
                p, VARIANT_ALOUFI
            )

    @pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
    @pytest.mark.parametrize("precision", [2, 4, 8, 16])
    def test_measured_depth_matches_formula(self, variant, precision):
        ctx = FheContext()
        keys = ctx.keygen()
        x_planes = [
            ctx.encrypt(row, keys.public)
            for row in to_bitplanes([1, 3], precision)
        ]
        y_planes = [
            ctx.encrypt(row, keys.public)
            for row in to_bitplanes([2, 2], precision)
        ]
        not_one = (
            ctx.encrypt([1, 1], keys.public)
            if variant == VARIANT_ALOUFI
            else None
        )
        result = secure_compare(ctx, x_planes, y_planes, variant, not_one)
        assert result.noise.level == seccomp_depth(precision, variant)


class TestValidation:
    def test_mismatched_precision_rejected(self, ctx, keys):
        x = [ctx.encrypt([1, 0], keys.public)]
        y = [ctx.encrypt([1, 0], keys.public)] * 2
        with pytest.raises(CompileError):
            secure_compare(ctx, x, y, VARIANT_OPTIMIZED)

    def test_mismatched_width_rejected(self, ctx, keys):
        x = [ctx.encrypt([1, 0], keys.public)]
        y = [ctx.encrypt([1, 0, 1], keys.public)]
        with pytest.raises(CompileError):
            secure_compare(ctx, x, y, VARIANT_OPTIMIZED)

    def test_aloufi_requires_not_one(self, ctx, keys):
        x = [ctx.encrypt([1], keys.public)]
        y = [ctx.encrypt([0], keys.public)]
        with pytest.raises(CompileError, match="not_one"):
            secure_compare(ctx, x, y, VARIANT_ALOUFI)

    def test_not_one_width_checked(self, ctx, keys):
        x = [ctx.encrypt([1, 0], keys.public)]
        y = [ctx.encrypt([0, 1], keys.public)]
        bad = ctx.encrypt([1], keys.public)
        with pytest.raises(CompileError, match="width"):
            secure_compare(ctx, x, y, VARIANT_ALOUFI, bad)

    def test_unknown_variant_rejected(self, ctx, keys):
        x = [ctx.encrypt([1], keys.public)]
        y = [ctx.encrypt([0], keys.public)]
        with pytest.raises(CompileError, match="variant"):
            secure_compare(ctx, x, y, "quantum")

    def test_empty_planes_rejected(self, ctx):
        with pytest.raises(CompileError):
            secure_compare(ctx, [], [], VARIANT_OPTIMIZED)
