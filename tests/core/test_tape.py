"""Locks for the compiled tape executor (`repro.ir.tape`).

Covers the tape tier's specific risks: register reuse must never let an
aliased slot corrupt a live ciphertext, the peak-live-slot accounting
must be exact, the rotation scheduler must strictly reduce rotation
work on the batched lowering without changing bits, fused kernels must
be observationally identical to their de-fused expansion (bits, noise,
tracker counts), and a tape must refuse — fail closed — a model bundle
it was not compiled for.
"""

import numpy as np
import pytest

from repro.errors import RuntimeProtocolError
from repro.core.compiler import CopseCompiler
from repro.core.runtime import (
    CopseServer,
    DataOwner,
    ModelOwner,
    secure_inference,
)
from repro.fhe.ciphertext import PlainVector
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind
from repro.forest.synthetic import random_forest
from repro.ir import (
    IrBuilder,
    analyze_counts,
    execute,
    lower_batched_inference,
    lower_inference,
    optimize,
    schedule_rotations,
)
from repro.ir.nodes import IrOp
from repro.ir.tape import OP_FUSED, compile_tape


PARAMS = EncryptionParams.paper_defaults()


def small_forest(seed=7, branches=(4, 5), depth=3):
    return random_forest(
        np.random.default_rng(seed),
        branches_per_tree=list(branches),
        max_depth=depth,
        n_features=2,
        precision=4,
    )


def small_compiled(seed=7):
    return CopseCompiler(precision=4).compile(small_forest(seed))


class _Layout:
    """Duck-typed batch layout for lowering tests."""

    def __init__(self, stride, capacity):
        self.stride = stride
        self.capacity = capacity


def random_gather_graph(rng, width=12, rows=9, shifts=6, stride=16, blocks=3):
    """A builder graph shaped like the batched masked gathers: XOR trees
    of masked rotations of one input, combined with a second input."""
    b = IrBuilder()
    total = stride * blocks
    v = b.input_ct("v", total)
    u = b.input_ct("u", total)
    outs = []
    for shift in range(shifts):
        terms = []
        for m in range(1 + (rows - 1 + shift) // width):
            rotated = b.rotate(v, shift - m * width)
            mask = np.zeros(total, dtype=np.uint8)
            mask[rng.integers(0, 2, total).astype(bool)] = 1
            terms.append(b.and_(rotated, b.const(mask)))
        gathered = b.xor_all(terms) if len(terms) > 1 else terms[0]
        outs.append(b.and_(u, gathered))
    b.output("out", b.xor_all(outs))
    return b.build()


def run_graph(graph, ctx, bindings):
    return execute(graph, ctx, bindings, phase=None)["out"]


def bindings_for(graph, ctx, keys, rng):
    out = {}
    for name, nid in graph.inputs.items():
        width = graph.node(nid).width
        bits = rng.integers(0, 2, width)
        out[name] = ctx.encrypt(bits, keys.public)
    return out


class TestScheduleRotations:
    def test_reduces_rotations_preserves_bits(self):
        rng = np.random.default_rng(11)
        graph = optimize(random_gather_graph(rng))
        scheduled = optimize(schedule_rotations(graph))
        before = analyze_counts(graph).get(IrOp.ROTATE, 0)
        after = analyze_counts(scheduled).get(IrOp.ROTATE, 0)
        assert after < before

        ctx = FheContext(PARAMS)
        keys = ctx.keygen()
        for seed in range(3):
            b = bindings_for(graph, ctx, keys, np.random.default_rng(seed))
            got = ctx.decrypt_bits(run_graph(scheduled, ctx, b), keys.secret)
            want = ctx.decrypt_bits(run_graph(graph, ctx, b), keys.secret)
            assert got == want

    def test_batched_lowering_strictly_below_plan(self):
        """The acceptance bar: the tape's scheduled rotation count is
        strictly below the optimized plan's on a batched lowering."""
        compiled = small_compiled()
        layout = _Layout(stride=16, capacity=4)
        plan = lower_batched_inference(compiled, layout)
        tape = plan.compile_tape()
        assert tape.rotations < plan.optimized.rotations
        assert tape.profile.depth == plan.optimized.depth

    def test_noop_on_gather_free_graphs(self):
        """Single-query lowerings have no masked gathers: the scheduler
        must leave their rotation counts unchanged."""
        plan = lower_inference(small_compiled())
        tape = plan.compile_tape()
        assert tape.rotations == plan.optimized.rotations


class TestRegisterAllocation:
    def test_slots_reused(self):
        plan = lower_inference(small_compiled())
        tape = plan.compile_tape()
        # Without reuse every instruction (plus every input) would need
        # its own slot.
        lower_bound = tape.num_instructions + len(tape.input_slots)
        assert tape.num_slots < lower_bound
        assert tape.peak_live <= lower_bound

    def test_peak_live_matches_bruteforce(self):
        """The compile-time peak-live metric equals a brute-force count
        of simultaneously live ciphertext values over the graph."""
        rng = np.random.default_rng(3)
        graph = optimize(random_gather_graph(rng))
        tape = compile_tape(graph, schedule=False, fuse=False)

        # Brute force: one value per non-const node; a value is live
        # from its definition until its last use (outputs to the end).
        order = [
            n.node_id for n in graph.nodes if n.op is not IrOp.CONST_PT
        ]
        position = {nid: i for i, nid in enumerate(order)}
        last = {}
        for node in graph.nodes:
            for a in node.args:
                if a in position:
                    last[a] = max(last.get(a, -1), position[node.node_id])
        for nid in graph.outputs.values():
            last[nid] = len(order)
        inputs = {
            n.node_id
            for n in graph.nodes
            if n.op in (IrOp.INPUT_CT, IrOp.INPUT_PT)
        }
        peak = 0
        live = set(inputs)
        for nid in order:
            if nid in inputs:
                continue
            live.add(nid)
            peak = max(peak, len(live))
            live = {v for v in live if last.get(v, -1) > position[nid]}
        peak = max(peak, len(inputs))
        assert tape.peak_live == peak

    def test_aliased_slots_never_corrupt_live_values(self):
        """A long-lived value crossing many short-lived ones must come
        through unscathed even though its neighbors' slots are recycled
        many times over."""
        b = IrBuilder()
        width = 8
        keep = b.input_ct("keep", width)
        churn = b.input_ct("churn", width)
        acc = churn
        for i in range(1, 40):
            acc = b.xor(b.rotate(acc, i % (width - 1) + 1), churn)
        # ``keep`` is consumed only at the very end: if any recycled slot
        # aliased it, the XOR below would expose the corruption.
        b.output("out", b.xor(acc, keep))
        graph = b.build()
        tape = compile_tape(graph)
        assert tape.num_slots < graph.num_nodes

        ctx = FheContext(PARAMS)
        keys = ctx.keygen()
        rng = np.random.default_rng(5)
        bindings = bindings_for(graph, ctx, keys, rng)
        got = ctx.decrypt_bits(
            tape.execute(ctx, bindings)["out"], keys.secret
        )
        want = ctx.decrypt_bits(
            execute(graph, ctx, bindings, phase=None)["out"], keys.secret
        )
        assert got == want

    def test_tape_matches_graph_executor_on_random_graphs(self):
        ctx = FheContext(PARAMS)
        keys = ctx.keygen()
        for seed in range(4):
            rng = np.random.default_rng(seed)
            graph = optimize(random_gather_graph(rng))
            tape = compile_tape(graph)
            bindings = bindings_for(graph, ctx, keys, rng)
            got = ctx.decrypt_bits(
                tape.execute(ctx, bindings)["out"], keys.secret
            )
            want = ctx.decrypt_bits(
                execute(graph, ctx, bindings, phase=None)["out"], keys.secret
            )
            assert got == want


class TestFusedKernels:
    def test_fused_and_defused_are_byte_identical_on_vector(self):
        """Same tape, fused vs fuse=False, on the vector backend: same
        bits, same noise state, same per-phase tracker counts."""
        compiled = small_compiled()
        layout = _Layout(stride=16, capacity=4)
        plan = lower_batched_inference(compiled, layout)
        fused_tape = plan.compile_tape()
        plain_tape = plan.compile_tape(fuse=False)
        assert any(i[0] == OP_FUSED for i in fused_tape.instructions)
        assert not any(i[0] == OP_FUSED for i in plain_tape.instructions)

        from repro.serve.batched_runtime import build_batched_model

        outs = {}
        counts = {}
        depths = {}
        for name, tape in (("fused", fused_tape), ("defused", plain_tape)):
            ctx = FheContext(PARAMS, backend="vector")
            keys = ctx.keygen()
            model = build_batched_model(
                ctx, compiled, layout, public_key=keys.public
            )
            q = _encrypt_block_query(ctx, compiled, layout, keys)
            result = tape.run(ctx, model, q)
            outs[name] = ctx.decrypt_bits(result, keys.secret)
            counts[name] = {
                k.value: v
                for k, v in ctx.tracker.phase_stats(
                    "tape_inference"
                ).counts.items()
            }
            depths[name] = ctx.tracker.multiplicative_depth()
            noise = result._noise
            outs[name + "/noise"] = (noise.level, round(noise.slack, 9))
        assert outs["fused"] == outs["defused"]
        assert outs["fused/noise"] == outs["defused/noise"]
        assert counts["fused"] == counts["defused"]
        assert depths["fused"] == depths["defused"]

    def test_reference_defused_equals_vector_fused(self):
        compiled = small_compiled()
        layout = _Layout(stride=16, capacity=4)
        tape = lower_batched_inference(compiled, layout).compile_tape()
        from repro.serve.batched_runtime import build_batched_model

        bits = {}
        for backend in ("reference", "vector"):
            ctx = FheContext(PARAMS, backend=backend)
            keys = ctx.keygen()
            model = build_batched_model(
                ctx, compiled, layout, public_key=keys.public
            )
            q = _encrypt_block_query(ctx, compiled, layout, keys)
            bits[backend] = ctx.decrypt_bits(
                tape.run(ctx, model, q), keys.secret
            )
        assert bits["reference"] == bits["vector"]

    def test_fused_key_mismatch_raises_like_defused(self):
        """Terms under different keys must fail identically whether the
        accumulation runs fused (vector) or de-fused: same error type,
        same message (the de-fused balanced fold's first bad pair)."""
        from repro.errors import KeyMismatchError

        b = IrBuilder()
        width = 8
        inputs = [b.input_ct(name, width) for name in "pqrs"]
        b.output(
            "out",
            b.xor(
                b.and_(inputs[0], inputs[1]), b.and_(inputs[2], inputs[3])
            ),
        )
        graph = b.build()
        fused_tape = compile_tape(graph)
        assert any(i[0] == OP_FUSED for i in fused_tape.instructions)
        plain_tape = compile_tape(graph, fuse=False)

        messages = {}
        for label, tape in (("fused", fused_tape), ("defused", plain_tape)):
            ctx = FheContext(PARAMS, backend="vector")
            keys_one = ctx.keygen()
            keys_two = ctx.keygen()
            bits = np.ones(width, dtype=np.uint8)
            bindings = {
                "p": ctx.encrypt(bits, keys_one.public),
                "q": ctx.encrypt(bits, keys_one.public),
                "r": ctx.encrypt(bits, keys_two.public),
                "s": ctx.encrypt(bits, keys_two.public),
            }
            with pytest.raises(KeyMismatchError) as err:
                tape.execute(ctx, bindings)
            # Key ids are per-keygen; normalize them out of the message.
            messages[label] = (
                str(err.value)
                .replace(str(keys_one.public.key_id), "K1")
                .replace(str(keys_two.public.key_id), "K2")
            )
        assert messages["fused"] == messages["defused"]

    def test_fused_ops_capability_surface(self):
        """fused_ops is an optional capability: present on vector (with
        its native tracker), absent on reference and plaintext."""
        assert FheContext(PARAMS, backend="reference").fused_ops is None
        assert FheContext(PARAMS, backend="plaintext").fused_ops is None
        vec = FheContext(PARAMS, backend="vector")
        assert vec.fused_ops is not None
        # A vector context on a caller-supplied DAG tracker cannot bulk
        # record: it must fall back to the de-fused path.
        from repro.fhe.tracker import OpTracker
        from repro.fhe.vector import VectorFheContext

        dag = VectorFheContext(PARAMS, tracker=OpTracker())
        assert dag.fused_ops is None


class TestTapeEngine:
    def test_secure_inference_tape_engine(self):
        compiled = small_compiled()
        forest = small_forest()
        features = [3, 12]
        outcome = secure_inference(compiled, features, engine="tape")
        assert outcome.result.bitvector == forest.label_bitvector(features)
        assert "tape_inference" in outcome.tracker.phases

    def test_plan_engine_with_prebuilt_tape_still_lowers_a_plan(self):
        """Passing a prebuilt tape alongside engine='plan' must not
        suppress the documented on-demand plan lowering."""
        compiled = small_compiled()
        forest = small_forest()
        features = [3, 12]
        tape = lower_inference(compiled).compile_tape()
        outcome = secure_inference(
            compiled, features, engine="plan", tape=tape
        )
        assert outcome.result.bitvector == forest.label_bitvector(features)
        assert "plan_inference" in outcome.tracker.phases

    def test_tape_engine_does_less_rotation_work_than_plan(self):
        compiled = small_compiled()
        layout = _Layout(stride=16, capacity=4)
        plan = lower_batched_inference(compiled, layout)
        tape = plan.compile_tape()
        from repro.serve.batched_runtime import build_batched_model

        rots = {}
        for name, runner in (("plan", plan), ("tape", tape)):
            ctx = FheContext(PARAMS, backend="vector")
            keys = ctx.keygen()
            model = build_batched_model(
                ctx, compiled, layout, public_key=keys.public
            )
            q = _encrypt_block_query(ctx, compiled, layout, keys)
            runner.run(ctx, model, q)
            phase = "plan_inference" if name == "plan" else "tape_inference"
            rots[name] = ctx.tracker.phase_stats(phase).counts.get(
                OpKind.ROTATE, 0
            )
        assert rots["tape"] < rots["plan"]
        assert rots["tape"] == tape.rotations

    def test_batched_tape_refused_by_single_query_server(self):
        compiled = small_compiled()
        tape = lower_batched_inference(
            compiled, _Layout(16, 4)
        ).compile_tape()
        ctx = FheContext(PARAMS)
        server = CopseServer(ctx, engine="tape", tape=tape)
        keys = ctx.keygen()
        maurice = ModelOwner(compiled)
        diane = DataOwner(maurice.query_spec(), keys)
        query = diane.prepare_query(ctx, [1, 2])
        model = maurice.encrypt_model(ctx, keys.public)
        with pytest.raises(RuntimeProtocolError, match="batched tape"):
            server.classify(model, query)

    def test_missing_tape_rejected(self):
        ctx = FheContext(PARAMS)
        compiled = small_compiled()
        server = CopseServer(ctx, engine="tape")
        keys = ctx.keygen()
        maurice = ModelOwner(compiled)
        diane = DataOwner(maurice.query_spec(), keys)
        query = diane.prepare_query(ctx, [1, 2])
        model = maurice.encrypt_model(ctx, keys.public)
        with pytest.raises(RuntimeProtocolError, match="CompiledTape"):
            server.classify(model, query)


class TestFingerprintFailClosed:
    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_tape_refuses_foreign_model(self, encrypted_model):
        """A tape compiled for model A must refuse a shape-identical
        model B — byte-identically to the plan's refusal."""
        compiled_a = small_compiled(seed=7)
        compiled_b = small_compiled(seed=8)
        assert compiled_a.fingerprint() != compiled_b.fingerprint()
        plan_a = lower_inference(compiled_a, encrypted_model=encrypted_model)
        tape_a = plan_a.compile_tape()
        assert tape_a.model_fingerprint == compiled_a.fingerprint()

        ctx = FheContext(PARAMS)
        keys = ctx.keygen()
        maurice_b = ModelOwner(compiled_b)
        query = DataOwner(maurice_b.query_spec(), keys).prepare_query(
            ctx, [1, 2]
        )
        model_b = (
            maurice_b.encrypt_model(ctx, keys.public)
            if encrypted_model
            else maurice_b.plaintext_model(ctx)
        )
        server = CopseServer(ctx, engine="tape", tape=tape_a)
        with pytest.raises(RuntimeProtocolError) as tape_err:
            server.classify(model_b, query)
        plan_server = CopseServer(ctx, engine="plan", plan=plan_a)
        with pytest.raises(RuntimeProtocolError) as plan_err:
            plan_server.classify(model_b, query)
        assert str(tape_err.value) == str(plan_err.value)

        # The right model still classifies correctly.
        maurice_a = ModelOwner(compiled_a)
        query_a = DataOwner(maurice_a.query_spec(), keys).prepare_query(
            ctx, [1, 2]
        )
        model_a = (
            maurice_a.encrypt_model(ctx, keys.public)
            if encrypted_model
            else maurice_a.plaintext_model(ctx)
        )
        result = server.classify(model_a, query_a)
        expected = small_forest(seed=7).label_bitvector([1, 2])
        assert ctx.decrypt_bits(result, keys.secret) == expected


def _encrypt_block_query(ctx, compiled, layout, keys):
    """Encrypt one batch worth of identical queries, replicated per
    block, without the full serve packing helpers (layout is the
    minimal duck-typed shape)."""
    from repro.core.runtime import EncryptedQuery
    from repro.fhe.simd import replicate, to_bitplanes

    rng = np.random.default_rng(21)
    total = layout.stride * layout.capacity
    planes = []
    per_query = []
    for _ in range(layout.capacity):
        features = [
            int(v)
            for v in rng.integers(0, 1 << compiled.precision, 2)
        ]
        replicated = replicate(features, compiled.max_multiplicity)
        per_query.append(to_bitplanes(replicated, compiled.precision))
    for plane_idx in range(compiled.precision):
        packed = np.zeros(total, dtype=np.uint8)
        for k, planes_k in enumerate(per_query):
            row = planes_k[plane_idx]
            packed[k * layout.stride: k * layout.stride + row.size] = row
        planes.append(ctx.encrypt(packed, keys.public))
    return EncryptedQuery(planes=planes, public_key=keys.public)
