"""Tests for the COPSE compiler front end."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.core.compiler import CompiledModel, CopseCompiler
from repro.core.runtime import secure_inference
from repro.fhe.params import EncryptionParams
from repro.forest.serialize import dumps_forest
from repro.forest.synthetic import random_forest


class TestCompile:
    def test_compiled_statistics(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        assert compiled.precision == 8
        assert compiled.branching == example_forest.branching
        assert compiled.quantized_branching == (
            example_forest.quantized_branching
        )
        assert compiled.max_multiplicity == example_forest.max_multiplicity
        assert compiled.max_depth == example_forest.max_depth
        assert compiled.num_labels == example_forest.num_leaves
        assert compiled.label_names == example_forest.label_names

    def test_structures_shapes(self, compiled_example):
        m = compiled_example
        assert m.threshold_planes.shape == (m.precision, m.quantized_branching)
        assert m.reshuffle.rows == m.branching
        assert m.reshuffle.cols == m.quantized_branching
        assert len(m.level_matrices) == m.max_depth
        for matrix in m.level_matrices:
            assert matrix.rows == m.num_labels
            assert matrix.cols == m.branching

    def test_precision_too_small_rejected(self, example_forest):
        with pytest.raises(Exception):
            CopseCompiler(precision=4).compile(example_forest)

    def test_zero_precision_rejected(self, example_forest):
        with pytest.raises(CompileError):
            CopseCompiler(precision=0).compile(example_forest)

    def test_compile_serialized(self, example_forest):
        compiled = CopseCompiler(precision=8).compile_serialized(
            dumps_forest(example_forest)
        )
        assert compiled.branching == example_forest.branching

    def test_describe(self, compiled_example):
        text = compiled_example.describe()
        assert "p=8" in text and "b=6" in text


class TestMultiplicityBound:
    def test_bound_inflates_q(self, example_forest):
        plain = CopseCompiler(precision=8).compile(example_forest)
        bounded = CopseCompiler(
            precision=8, multiplicity_bound=10
        ).compile(example_forest)
        assert bounded.max_multiplicity == 10
        assert bounded.quantized_branching == 10 * example_forest.n_features
        assert bounded.quantized_branching > plain.quantized_branching
        assert bounded.branching == plain.branching

    def test_bound_below_true_k_rejected(self, example_forest):
        with pytest.raises(CompileError, match="below"):
            CopseCompiler(precision=8, multiplicity_bound=2).compile(
                example_forest
            )

    def test_bounded_model_still_correct(self, example_forest):
        """Extra sentinel padding must not change inference results
        (Section 7.2.1: 'the exact value does not matter')."""
        bounded = CopseCompiler(
            precision=8, multiplicity_bound=7
        ).compile(example_forest)
        rng = np.random.default_rng(1)
        for _ in range(10):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            outcome = secure_inference(bounded, feats)
            assert outcome.result.bitvector == (
                example_forest.label_bitvector(feats)
            )


class TestParameterChecking:
    def test_depth_check(self, example_forest):
        compiled = CopseCompiler(precision=16).compile(example_forest)
        with pytest.raises(CompileError, match="depth"):
            compiled.check_parameters(EncryptionParams(bits=200))

    def test_width_check(self):
        forest = random_forest(
            np.random.default_rng(0), [40, 40], max_depth=7, n_features=2
        )
        compiled = CopseCompiler(precision=8).compile(forest)
        # q can exceed one column's 384 slots with unbalanced features.
        if compiled.required_width() > 384:
            with pytest.raises(CompileError, match="slots"):
                compiled.check_parameters(EncryptionParams(columns=1))

    def test_paper_params_accept_microbenchmarks(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        compiled.check_parameters(EncryptionParams.paper_defaults())


class TestParameterSelection:
    def test_selects_feasible_minimum(self, compiled_example):
        compiler = CopseCompiler(precision=8)
        best = compiler.select_parameters(compiled_example)
        assert best.security >= 128
        compiled_example.check_parameters(best)
        # The small example model fits a single column and 400 bits.
        assert best.columns == 1
        assert best.bits == 400

    def test_min_security_respected(self, compiled_example):
        compiler = CopseCompiler(precision=8)
        best = compiler.select_parameters(compiled_example, min_security=192)
        assert best.security == 192

    def test_infeasible_grid_raises(self, compiled_example):
        compiler = CopseCompiler(precision=8)
        grid = [EncryptionParams(security=80, bits=400, columns=1)]
        with pytest.raises(CompileError, match="feasible"):
            compiler.select_parameters(compiled_example, grid=grid)


class TestCompiledModelValidation:
    def test_inconsistent_planes_rejected(self, compiled_example):
        m = compiled_example
        with pytest.raises(CompileError):
            CompiledModel(
                precision=m.precision + 1,  # planes no longer match
                n_features=m.n_features,
                branching=m.branching,
                quantized_branching=m.quantized_branching,
                max_multiplicity=m.max_multiplicity,
                max_depth=m.max_depth,
                num_labels=m.num_labels,
                label_names=m.label_names,
                codebook=m.codebook,
                threshold_planes=m.threshold_planes,
                reshuffle=m.reshuffle,
                level_matrices=m.level_matrices,
                level_masks=m.level_masks,
            )

    def test_wrong_level_count_rejected(self, compiled_example):
        m = compiled_example
        with pytest.raises(CompileError):
            CompiledModel(
                precision=m.precision,
                n_features=m.n_features,
                branching=m.branching,
                quantized_branching=m.quantized_branching,
                max_multiplicity=m.max_multiplicity,
                max_depth=m.max_depth,
                num_labels=m.num_labels,
                label_names=m.label_names,
                codebook=m.codebook,
                threshold_planes=m.threshold_planes,
                reshuffle=m.reshuffle,
                level_matrices=m.level_matrices[:-1],
                level_masks=m.level_masks,
            )
