"""Tests for the staging code generator."""

import numpy as np
import pytest

from repro.core.codegen import exec_generated_module, generate_module_source
from repro.core.compiler import CopseCompiler
from repro.core.runtime import DataOwner, ModelOwner, secure_inference
from repro.fhe.context import FheContext


@pytest.fixture
def generated(compiled_example):
    source = generate_module_source(compiled_example)
    return exec_generated_module(source)


class TestGeneratedSource:
    def test_source_is_valid_python(self, compiled_example):
        source = generate_module_source(compiled_example)
        compile(source, "<generated>", "exec")  # must not raise

    def test_header_documents_model(self, compiled_example):
        source = generate_module_source(compiled_example)
        assert "Auto-generated" in source
        assert f"b={compiled_example.branching}" in source

    def test_exports(self, generated):
        for name in (
            "load_model",
            "encrypt_model",
            "plaintext_model",
            "query_spec",
            "classify",
        ):
            assert callable(generated[name])


class TestStagedModelFidelity:
    def test_load_model_reproduces_structures(self, compiled_example, generated):
        staged = generated["load_model"]()
        m = compiled_example
        assert staged.precision == m.precision
        assert staged.branching == m.branching
        assert staged.quantized_branching == m.quantized_branching
        assert staged.codebook == m.codebook
        assert np.array_equal(staged.threshold_planes, m.threshold_planes)
        assert np.array_equal(
            staged.reshuffle.diagonals, m.reshuffle.diagonals
        )
        for a, b in zip(staged.level_matrices, m.level_matrices):
            assert np.array_equal(a.diagonals, b.diagonals)
        for a, b in zip(staged.level_masks, m.level_masks):
            assert np.array_equal(a, b)

    def test_generated_classify_matches_interpreter(
        self, compiled_example, generated, example_forest
    ):
        rng = np.random.default_rng(5)
        for _ in range(5):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            # Interpreter path.
            expected = secure_inference(compiled_example, feats).result

            # Generated-module path.
            ctx = FheContext()
            keys = ctx.keygen()
            enc_model = generated["encrypt_model"](ctx, keys.public)
            diane = DataOwner(generated["query_spec"](), keys)
            query = diane.prepare_query(ctx, feats)
            result_ct = generated["classify"](ctx, enc_model, query)
            got = diane.decrypt_result(ctx, result_ct)

            assert got.bitvector == expected.bitvector
            assert got.bitvector == example_forest.label_bitvector(feats)

    def test_generated_plaintext_model_path(
        self, compiled_example, generated, example_forest
    ):
        ctx = FheContext()
        keys = ctx.keygen()
        enc_model = generated["plaintext_model"](ctx)
        diane = DataOwner(generated["query_spec"](), keys)
        query = diane.prepare_query(ctx, [42, 77])
        result_ct = generated["classify"](ctx, enc_model, query)
        got = diane.decrypt_result(ctx, result_ct)
        assert got.bitvector == example_forest.label_bitvector([42, 77])

    def test_roundtrip_through_source_twice(self, compiled_example):
        """Generating source from a staged model is a fixed point."""
        source1 = generate_module_source(compiled_example)
        staged = exec_generated_module(source1)["load_model"]()
        source2 = generate_module_source(staged)
        assert source1 == source2
