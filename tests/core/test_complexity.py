"""Tests validating measured operation counts against analytic formulas.

This is the Table 1 / Table 2 reproduction at test granularity: for every
microbenchmark and both model representations, the tracker's per-phase
counts must equal the implementation formulas *exactly*, and the paper's
formulas must agree where the implementations coincide (model encryption)
and stay within the documented deviations elsewhere.
"""

import pytest

from repro.core.complexity import (
    CopseComplexity,
    baseline_comparison,
    copse_total_depth,
    impl_accumulation,
    impl_comparison,
    impl_data_encryption,
    impl_levels_shared,
    impl_model_encryption,
    impl_reshuffle,
    impl_single_level,
    impl_total,
    merge_counts,
    paper_model_encryption,
    paper_total,
    paper_total_depth,
)
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.core.seccomp import VARIANT_ALOUFI, VARIANT_OPTIMIZED
from repro.forest.synthetic import MICROBENCHMARKS


def _measured_counts(tracker, phases):
    counts = {}
    for phase in phases:
        for kind, n in tracker.phase_stats(phase).counts.items():
            counts[kind.value] = counts.get(kind.value, 0) + n
    return counts


@pytest.mark.parametrize("spec", MICROBENCHMARKS, ids=lambda s: s.name)
@pytest.mark.parametrize("encrypted_model", [True, False])
@pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
class TestMeasuredEqualsFormula:
    def test_inference_counts_exact(self, spec, encrypted_model, variant):
        forest = spec.build()
        compiled = CopseCompiler(precision=spec.precision).compile(forest)
        outcome = secure_inference(
            compiled,
            [1, 2],
            encrypted_model=encrypted_model,
            seccomp_variant=variant,
        )
        measured = _measured_counts(
            outcome.tracker,
            ("comparison", "reshuffle", "levels", "accumulate"),
        )
        predicted = impl_total(
            compiled.precision,
            compiled.quantized_branching,
            compiled.max_depth,
            compiled.branching,
            encrypted_model=encrypted_model,
            variant=variant,
        )
        assert measured == predicted

    def test_depth_exact(self, spec, encrypted_model, variant):
        forest = spec.build()
        compiled = CopseCompiler(precision=spec.precision).compile(forest)
        outcome = secure_inference(
            compiled,
            [3, 4],
            encrypted_model=encrypted_model,
            seccomp_variant=variant,
        )
        assert outcome.tracker.multiplicative_depth() == copse_total_depth(
            compiled.precision, compiled.max_depth, variant, encrypted_model
        )


class TestEncryptionCounts:
    def test_model_encryption_matches_table_1d(self, compiled_example):
        outcome = secure_inference(compiled_example, [5, 6])
        measured = _measured_counts(outcome.tracker, ("model_encrypt",))
        m = compiled_example
        predicted = impl_model_encryption(
            m.precision, m.quantized_branching, m.max_depth, m.branching
        )
        assert measured == predicted
        # Our model-encryption count coincides with the paper's Table 1(d).
        assert predicted == paper_model_encryption(
            m.precision, m.quantized_branching, m.max_depth, m.branching
        )

    def test_data_encryption(self, compiled_example):
        outcome = secure_inference(compiled_example, [5, 6])
        measured = _measured_counts(outcome.tracker, ("data_encrypt",))
        assert measured == impl_data_encryption(compiled_example.precision)


class TestFormulaRelations:
    def test_impl_total_is_sum_of_parts(self):
        p, q, d, b = 8, 20, 5, 15
        parts = [
            impl_comparison(p),
            impl_reshuffle(b, q),
            impl_levels_shared(b),
            impl_accumulation(d),
        ]
        parts += [impl_single_level(b) for _ in range(d)]
        assert impl_total(p, q, d, b) == merge_counts(*parts)

    def test_paper_total_consistency(self):
        """Table 2 equals Table 1's parts combined (as printed)."""
        p, q, d, b = 8, 15, 5, 15
        total = paper_total(p, q, d, b)
        assert total["rotate"] == q + d * b
        assert total["const_add"] == p
        assert total["encrypt"] == 1 + p + q + d * (b + 1)

    def test_depth_formulas(self):
        # Our Aloufi-variant depth differs from the paper's printed
        # formula by the documented constant (scan guard fusing).
        for p, d in ((8, 5), (16, 5), (8, 4), (8, 6)):
            ours = copse_total_depth(p, d, VARIANT_ALOUFI)
            papers = paper_total_depth(p, d)
            assert abs(ours - papers) <= 1
        # The optimized variant is strictly shallower.
        assert copse_total_depth(8, 5, VARIANT_OPTIMIZED) < copse_total_depth(
            8, 5, VARIANT_ALOUFI
        )

    def test_multiply_counts_close_to_paper(self):
        """Our total multiplies track the paper's Table 2 within the
        documented deviations (accumulation d-1 vs 2d-2, elided zero
        rotations)."""
        p, q, d, b = 8, 20, 5, 15
        ours = impl_total(p, q, d, b)["multiply"]
        papers = paper_total(p, q, d, b)["multiply"]
        assert abs(ours - papers) <= d + 2

    def test_baseline_comparison_scales_with_branches(self):
        one = baseline_comparison(8, 1)
        many = baseline_comparison(8, 10)
        assert many["multiply"] == 10 * one["multiply"]
        assert many["encrypt"] == 1  # shared all-ones helper


class TestComplexityBundle:
    def test_bundle_consistency(self, compiled_example):
        c = CopseComplexity(
            precision=compiled_example.precision,
            branching=compiled_example.branching,
            quantized_branching=compiled_example.quantized_branching,
            max_depth=compiled_example.max_depth,
        )
        assert c.impl_counts() == impl_total(
            compiled_example.precision,
            compiled_example.quantized_branching,
            compiled_example.max_depth,
            compiled_example.branching,
        )
        assert c.impl_depth() == copse_total_depth(
            compiled_example.precision, compiled_example.max_depth
        )
        assert c.paper_depth() == paper_total_depth(
            compiled_example.precision, compiled_example.max_depth
        )
