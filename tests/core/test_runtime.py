"""End-to-end tests for the COPSE runtime (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KeyMismatchError, RuntimeProtocolError
from repro.core.compiler import CopseCompiler
from repro.core.runtime import (
    CopseServer,
    DataOwner,
    INFERENCE_PHASES,
    ModelOwner,
    secure_inference,
)
from repro.core.seccomp import VARIANT_ALOUFI, VARIANT_OPTIMIZED
from repro.fhe.context import FheContext
from repro.forest.synthetic import MICROBENCHMARKS, random_forest


class TestOracleAgreement:
    """Secure inference must match plaintext inference bit for bit."""

    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_example_forest(self, example_forest, encrypted_model):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        rng = np.random.default_rng(0)
        for _ in range(10):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            outcome = secure_inference(
                compiled, feats, encrypted_model=encrypted_model
            )
            assert outcome.result.bitvector == example_forest.label_bitvector(
                feats
            )
            assert outcome.result.chosen_labels == (
                example_forest.classify_per_tree(feats)
            )

    @pytest.mark.parametrize(
        "variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED]
    )
    def test_both_seccomp_variants(self, example_forest, variant):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        outcome = secure_inference(
            compiled, [100, 30], seccomp_variant=variant
        )
        assert outcome.result.bitvector == example_forest.label_bitvector(
            [100, 30]
        )

    @pytest.mark.parametrize("spec", MICROBENCHMARKS, ids=lambda s: s.name)
    def test_all_microbenchmarks(self, spec):
        forest = spec.build()
        compiled = CopseCompiler(precision=spec.precision).compile(forest)
        rng = np.random.default_rng(99)
        limit = 1 << spec.precision
        for _ in range(3):
            feats = [int(v) for v in rng.integers(0, limit, 2)]
            outcome = secure_inference(compiled, feats)
            assert outcome.result.bitvector == forest.label_bitvector(feats)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_forests_random_inputs(self, forest_seed, query_seed):
        forest = random_forest(
            np.random.default_rng(forest_seed),
            branches_per_tree=[5, 6],
            max_depth=4,
            n_features=3,
        )
        compiled = CopseCompiler(precision=8).compile(forest)
        feats = [
            int(v)
            for v in np.random.default_rng(query_seed).integers(0, 256, 3)
        ]
        outcome = secure_inference(compiled, feats)
        assert outcome.result.bitvector == forest.label_bitvector(feats)

    def test_boundary_feature_values(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        for feats in ([0, 0], [255, 255], [0, 255], [255, 0], [120, 120]):
            outcome = secure_inference(compiled, feats)
            assert outcome.result.bitvector == example_forest.label_bitvector(
                feats
            )


class TestResultDecoding:
    def test_n_hot_and_plurality(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        outcome = secure_inference(compiled, [10, 10])
        result = outcome.result
        assert sum(result.bitvector) == example_forest.n_trees
        assert len(result.chosen_slots) == example_forest.n_trees
        assert result.plurality() in result.chosen_labels
        assert result.plurality_name() == (
            example_forest.label_names[result.plurality()]
        )

    def test_empty_result_raises(self):
        from repro.core.runtime import InferenceResult

        empty = InferenceResult(bitvector=[0, 0], codebook=[0, 1], label_names=["a", "b"])
        with pytest.raises(RuntimeProtocolError):
            empty.plurality()


class TestProtocolErrors:
    def test_wrong_arity_query(self, compiled_example, ctx):
        keys = ctx.keygen()
        maurice = ModelOwner(compiled_example)
        diane = DataOwner(maurice.query_spec(), keys)
        with pytest.raises(RuntimeProtocolError, match="features"):
            diane.prepare_query(ctx, [1, 2, 3])

    def test_feature_exceeds_precision(self, compiled_example, ctx):
        keys = ctx.keygen()
        maurice = ModelOwner(compiled_example)
        diane = DataOwner(maurice.query_spec(), keys)
        with pytest.raises(RuntimeProtocolError, match="bits"):
            diane.prepare_query(ctx, [256, 0])

    def test_sally_cannot_decrypt(self, compiled_example, ctx):
        keys = ctx.keygen()
        maurice = ModelOwner(compiled_example)
        diane = DataOwner(maurice.query_spec(), keys)
        sally = CopseServer(ctx)
        enc_model = maurice.encrypt_model(ctx, keys.public)
        query = diane.prepare_query(ctx, [10, 10])
        result = sally.classify(enc_model, query)
        sally_keys = ctx.keygen()  # Sally's own key cannot decrypt
        with pytest.raises(KeyMismatchError):
            ctx.decrypt(result, sally_keys.secret)

    def test_precision_mismatch_detected(self, example_forest, ctx):
        compiled8 = CopseCompiler(precision=8).compile(example_forest)
        compiled9 = CopseCompiler(precision=9).compile(example_forest)
        keys = ctx.keygen()
        diane = DataOwner(ModelOwner(compiled9).query_spec(), keys)
        query = diane.prepare_query(ctx, [10, 10])
        enc_model = ModelOwner(compiled8).encrypt_model(ctx, keys.public)
        with pytest.raises(RuntimeProtocolError, match="precision"):
            CopseServer(ctx).classify(enc_model, query)

    def test_aloufi_variant_needs_public_key(self, compiled_example, ctx):
        keys = ctx.keygen()
        maurice = ModelOwner(compiled_example)
        diane = DataOwner(maurice.query_spec(), keys)
        enc_model = maurice.encrypt_model(ctx, keys.public)
        query = diane.prepare_query(ctx, [10, 10])
        query.public_key = None
        with pytest.raises(RuntimeProtocolError, match="public key"):
            CopseServer(ctx, seccomp_variant=VARIANT_ALOUFI).classify(
                enc_model, query
            )


class TestPhasesAndLeakageSurface:
    def test_inference_phases_recorded(self, compiled_example):
        outcome = secure_inference(compiled_example, [10, 10])
        for phase in INFERENCE_PHASES:
            if phase == "bootstrap":
                continue  # only present when auto-bootstrap fires
            assert phase in outcome.tracker.phases

    def test_encrypted_model_structure(self, compiled_example, ctx):
        keys = ctx.keygen()
        enc = ModelOwner(compiled_example).encrypt_model(ctx, keys.public)
        assert enc.is_encrypted
        assert len(enc.threshold_planes) == compiled_example.precision
        assert len(enc.reshuffle_diagonals) == (
            compiled_example.quantized_branching
        )
        assert len(enc.level_diagonals) == compiled_example.max_depth
        assert all(
            len(diags) == compiled_example.branching
            for diags in enc.level_diagonals
        )
        assert len(enc.level_masks) == compiled_example.max_depth

    def test_plaintext_model_structure(self, compiled_example, ctx):
        enc = ModelOwner(compiled_example).plaintext_model(ctx)
        assert not enc.is_encrypted

    def test_query_spec_reveals_only_k(self, compiled_example):
        spec = ModelOwner(compiled_example).query_spec()
        assert spec.max_multiplicity == compiled_example.max_multiplicity
        # The spec carries no thresholds and no tree structure.
        assert not hasattr(spec, "threshold_planes")
        assert not hasattr(spec, "reshuffle")


class TestNoiseBudget:
    def test_deep_circuit_fails_on_small_params(self, example_forest):
        from repro.errors import CompileError
        from repro.fhe.params import EncryptionParams

        compiled = CopseCompiler(precision=16).compile(example_forest)
        tiny = EncryptionParams(bits=200)
        with pytest.raises(CompileError, match="depth"):
            secure_inference(compiled, [10, 10], params=tiny)

    def test_result_decryptable_at_paper_params(self, example_forest):
        compiled = CopseCompiler(precision=16).compile(example_forest)
        outcome = secure_inference(compiled, [10, 10])
        assert outcome.result.bitvector == example_forest.label_bitvector(
            [10, 10]
        )
