"""Tests for the Section 7.2 privacy/performance extensions."""

import numpy as np
import pytest

from repro.errors import RuntimeProtocolError
from repro.core.compiler import CopseCompiler
from repro.core.extensions import (
    build_replication_matrix,
    prepare_unreplicated_query,
    replicate_on_server,
    shuffle_classification,
)
from repro.core.runtime import CopseServer, DataOwner, ModelOwner
from repro.fhe.context import FheContext
from repro.fhe.tracker import OpKind


class TestReplicationMatrix:
    def test_dense_structure(self):
        dm = build_replication_matrix(n_features=2, multiplicity=3)
        dense = dm.to_dense()
        assert dense.shape == (6, 2)
        # Rows 0-2 pick feature 0, rows 3-5 pick feature 1.
        assert dense[:3, 0].tolist() == [1, 1, 1]
        assert dense[3:, 1].tolist() == [1, 1, 1]
        assert dense[:3, 1].tolist() == [0, 0, 0]

    def test_replicates_vector(self):
        ctx = FheContext()
        keys = ctx.keygen()
        dm = build_replication_matrix(3, 2)
        from repro.core.matmul import encode_diagonals, halevi_shoup_matvec

        diagonals = encode_diagonals(ctx, dm.diagonals)
        vec = ctx.encrypt([1, 0, 1], keys.public)
        out = halevi_shoup_matvec(ctx, diagonals, rows=6, cols=3, vector=vec)
        assert ctx.decrypt_bits(out, keys.secret) == [1, 1, 0, 0, 1, 1]


class TestServerSideReplication:
    def test_end_to_end_matches_client_replication(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        rng = np.random.default_rng(2)
        for _ in range(5):
            feats = [int(v) for v in rng.integers(0, 256, 2)]

            ctx = FheContext()
            keys = ctx.keygen()
            maurice = ModelOwner(compiled)
            spec = maurice.query_spec()
            sally = CopseServer(ctx)
            enc_model = maurice.encrypt_model(ctx, keys.public)

            # Diane sends each feature once; Sally replicates on cipher.
            slim = prepare_unreplicated_query(ctx, spec, keys, feats)
            assert slim.width == compiled.n_features
            query = replicate_on_server(
                ctx, slim, spec.n_features, spec.max_multiplicity
            )
            assert query.width == compiled.quantized_branching
            query.public_key = keys.public

            result_ct = sally.classify(enc_model, query)
            diane = DataOwner(spec, keys)
            result = diane.decrypt_result(ctx, result_ct)
            assert result.bitvector == example_forest.label_bitvector(feats)

    def test_replication_costs_ciphertext_work(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        ctx = FheContext()
        keys = ctx.keygen()
        spec = ModelOwner(compiled).query_spec()
        slim = prepare_unreplicated_query(ctx, spec, keys, [10, 20])
        before = ctx.tracker.count(OpKind.CONST_MULT)
        replicate_on_server(ctx, slim, spec.n_features, spec.max_multiplicity)
        # One plaintext-matrix product per bit plane.
        assert ctx.tracker.count(OpKind.CONST_MULT) - before == (
            spec.precision * spec.n_features
        )

    def test_width_mismatch_rejected(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        ctx = FheContext()
        keys = ctx.keygen()
        spec = ModelOwner(compiled).query_spec()
        slim = prepare_unreplicated_query(ctx, spec, keys, [10, 20])
        with pytest.raises(RuntimeProtocolError, match="unreplicated"):
            replicate_on_server(ctx, slim, 5, 3)

    def test_arity_and_domain_checked(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        ctx = FheContext()
        keys = ctx.keygen()
        spec = ModelOwner(compiled).query_spec()
        with pytest.raises(RuntimeProtocolError):
            prepare_unreplicated_query(ctx, spec, keys, [1, 2, 3])
        with pytest.raises(RuntimeProtocolError):
            prepare_unreplicated_query(ctx, spec, keys, [999, 0])


class TestCodebookShuffle:
    def _classify(self, example_forest, feats):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        ctx = FheContext()
        keys = ctx.keygen()
        maurice = ModelOwner(compiled)
        diane = DataOwner(maurice.query_spec(), keys)
        sally = CopseServer(ctx)
        enc_model = maurice.encrypt_model(ctx, keys.public)
        query = diane.prepare_query(ctx, feats)
        result_ct = sally.classify(enc_model, query)
        return ctx, keys, diane, result_ct, compiled

    def test_shuffle_preserves_decoded_labels(self, example_forest):
        feats = [100, 30]
        ctx, keys, diane, result_ct, compiled = self._classify(
            example_forest, feats
        )
        shuffled = shuffle_classification(
            ctx,
            result_ct,
            compiled.codebook,
            rng=np.random.default_rng(7),
        )
        bits = ctx.decrypt_bits(shuffled.ciphertext, keys.secret)
        chosen = sorted(
            shuffled.codebook[i] for i, b in enumerate(bits) if b
        )
        assert chosen == sorted(example_forest.classify_per_tree(feats))

    def test_shuffle_changes_slot_order(self, example_forest):
        ctx, keys, diane, result_ct, compiled = self._classify(
            example_forest, [100, 30]
        )
        shuffled = shuffle_classification(
            ctx, result_ct, compiled.codebook, rng=np.random.default_rng(3)
        )
        assert shuffled.codebook != compiled.codebook

    def test_padding_hides_leaf_counts(self, example_forest):
        feats = [10, 10]
        ctx, keys, diane, result_ct, compiled = self._classify(
            example_forest, feats
        )
        padded = shuffle_classification(
            ctx,
            result_ct,
            compiled.codebook,
            rng=np.random.default_rng(11),
            pad_to=compiled.num_labels + 5,
            n_label_kinds=len(compiled.label_names),
        )
        bits = ctx.decrypt_bits(padded.ciphertext, keys.secret)
        assert len(bits) == compiled.num_labels + 5
        assert sum(bits) == example_forest.n_trees  # dummies stay zero
        chosen = sorted(padded.codebook[i] for i, b in enumerate(bits) if b)
        assert chosen == sorted(example_forest.classify_per_tree(feats))

    def test_bad_codebook_length_rejected(self, example_forest):
        ctx, keys, diane, result_ct, compiled = self._classify(
            example_forest, [1, 1]
        )
        with pytest.raises(RuntimeProtocolError):
            shuffle_classification(
                ctx, result_ct, [0, 1], rng=np.random.default_rng(0)
            )

    def test_pad_shrinking_rejected(self, example_forest):
        ctx, keys, diane, result_ct, compiled = self._classify(
            example_forest, [1, 1]
        )
        with pytest.raises(RuntimeProtocolError):
            shuffle_classification(
                ctx,
                result_ct,
                compiled.codebook,
                rng=np.random.default_rng(0),
                pad_to=2,
            )
