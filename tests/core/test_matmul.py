"""Tests for the Halevi-Shoup diagonal matrix-vector product."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompileError
from repro.core.matmul import (
    encode_diagonals,
    encrypt_diagonals,
    halevi_shoup_matvec,
)
from repro.core.structures import DiagonalMatrix
from repro.fhe.context import FheContext
from repro.fhe.tracker import OpKind


def _secure_matvec(dense, v, plain_matrix, seed_ctx=None):
    ctx = seed_ctx or FheContext()
    keys = ctx.keygen()
    dm = DiagonalMatrix.from_dense(np.asarray(dense, dtype=np.uint8))
    if plain_matrix:
        diagonals = encode_diagonals(ctx, dm.diagonals)
    else:
        diagonals = encrypt_diagonals(ctx, dm.diagonals, keys.public)
    vec = ctx.encrypt(np.asarray(v, dtype=np.uint8), keys.public)
    result = halevi_shoup_matvec(ctx, diagonals, dm.rows, dm.cols, vec)
    return ctx.decrypt_bits(result, keys.secret), ctx


@pytest.mark.parametrize("plain_matrix", [True, False])
class TestCorrectness:
    def test_square(self, plain_matrix):
        dense = [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        out, _ = _secure_matvec(dense, [1, 0, 1], plain_matrix)
        assert out == [1, 1, 0]

    def test_wide_matrix_truncates(self, plain_matrix):
        dense = [[1, 0, 0, 0, 1], [0, 1, 0, 1, 0]]
        v = [1, 1, 0, 0, 1]
        expected = (np.array(dense) @ np.array(v)) % 2
        out, _ = _secure_matvec(dense, v, plain_matrix)
        assert out == expected.tolist()

    def test_tall_matrix_extends(self, plain_matrix):
        dense = [[1, 0], [0, 1], [1, 1], [0, 0], [1, 0]]
        v = [1, 1]
        expected = (np.array(dense) @ np.array(v)) % 2
        out, _ = _secure_matvec(dense, v, plain_matrix)
        assert out == expected.tolist()

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_gf2(self, plain_matrix, m, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.integers(0, 2, (m, n)).astype(np.uint8)
        v = rng.integers(0, 2, n).astype(np.uint8)
        expected = (dense.astype(int) @ v) % 2
        out, _ = _secure_matvec(dense, v, plain_matrix)
        assert out == expected.tolist()


class TestCosts:
    def test_multiplicative_depth_is_one(self):
        dense = np.eye(6, dtype=np.uint8)
        v = [1, 0, 1, 0, 1, 0]
        out, ctx = _secure_matvec(dense, v, plain_matrix=False)
        assert ctx.tracker.multiplicative_depth() == 1

    def test_rotation_count(self):
        """n diagonals need n - 1 rotations (zero rotation elided)."""
        ctx = FheContext()
        dense = np.ones((4, 6), dtype=np.uint8)
        _, ctx = _secure_matvec(dense, [1] * 6, plain_matrix=True, seed_ctx=ctx)
        assert ctx.tracker.count(OpKind.ROTATE) == 5

    def test_tall_matrix_pays_extensions(self):
        ctx = FheContext()
        dense = np.ones((7, 3), dtype=np.uint8)
        _, ctx = _secure_matvec(dense, [1, 0, 1], plain_matrix=True, seed_ctx=ctx)
        # 2 rotations (i=1,2) + 3 cyclic extensions recorded as rotations.
        assert ctx.tracker.count(OpKind.ROTATE) == 5

    def test_plain_matrix_uses_const_mults(self):
        ctx = FheContext()
        dense = np.eye(4, dtype=np.uint8)
        _, ctx = _secure_matvec(dense, [1, 1, 0, 0], plain_matrix=True, seed_ctx=ctx)
        assert ctx.tracker.count(OpKind.CONST_MULT) == 4
        assert ctx.tracker.count(OpKind.MULTIPLY) == 0


class TestValidation:
    def test_wrong_diagonal_count(self, ctx, keys):
        vec = ctx.encrypt([1, 0], keys.public)
        diagonals = [ctx.encode([1, 1])]
        with pytest.raises(CompileError, match="diagonals"):
            halevi_shoup_matvec(ctx, diagonals, rows=2, cols=2, vector=vec)

    def test_wrong_vector_length(self, ctx, keys):
        vec = ctx.encrypt([1, 0, 1], keys.public)
        diagonals = [ctx.encode([1, 1]), ctx.encode([1, 1])]
        with pytest.raises(CompileError, match="columns"):
            halevi_shoup_matvec(ctx, diagonals, rows=2, cols=2, vector=vec)

    def test_wrong_diagonal_length(self, ctx, keys):
        vec = ctx.encrypt([1, 0], keys.public)
        diagonals = [ctx.encode([1, 1, 1]), ctx.encode([1, 1])]
        with pytest.raises(CompileError, match="length"):
            halevi_shoup_matvec(ctx, diagonals, rows=2, cols=2, vector=vec)
