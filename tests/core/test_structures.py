"""Tests for the vectorizable structures (Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompileError
from repro.core.analysis import ModelAnalysis
from repro.core.structures import (
    DiagonalMatrix,
    build_all_levels,
    build_all_masks,
    build_level_dense,
    build_level_mask,
    build_reshuffle_dense,
    build_reshuffle_matrix,
    build_threshold_planes,
)
from repro.fhe.simd import from_bitplanes
from repro.forest.synthetic import random_forest


class TestDiagonalMatrix:
    def test_roundtrip_square(self):
        dense = np.array([[1, 0, 1], [0, 1, 0], [1, 1, 0]], dtype=np.uint8)
        dm = DiagonalMatrix.from_dense(dense)
        assert dm.rows == 3 and dm.cols == 3
        assert np.array_equal(dm.to_dense(), dense)

    def test_roundtrip_wide(self):
        dense = np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=np.uint8)
        dm = DiagonalMatrix.from_dense(dense)
        assert dm.num_diagonals == 4
        assert dm.diagonal(0).shape == (2,)
        assert np.array_equal(dm.to_dense(), dense)

    def test_roundtrip_tall(self):
        dense = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        dm = DiagonalMatrix.from_dense(dense)
        assert dm.num_diagonals == 2
        assert np.array_equal(dm.to_dense(), dense)

    def test_diagonal_definition(self):
        """d_i[j] = A[j][(j + i) mod n] — the paper's generalized diagonal."""
        rng = np.random.default_rng(0)
        dense = rng.integers(0, 2, size=(4, 6)).astype(np.uint8)
        dm = DiagonalMatrix.from_dense(dense)
        for i in range(6):
            for j in range(4):
                assert dm.diagonal(i)[j] == dense[j][(j + i) % 6]

    def test_non_matrix_rejected(self):
        with pytest.raises(CompileError):
            DiagonalMatrix.from_dense(np.zeros(4, dtype=np.uint8))

    def test_inconsistent_shape_rejected(self):
        with pytest.raises(CompileError):
            DiagonalMatrix(rows=2, cols=3, diagonals=np.zeros((2, 2), np.uint8))

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, m, n, seed):
        dense = np.random.default_rng(seed).integers(0, 2, (m, n)).astype(np.uint8)
        assert np.array_equal(DiagonalMatrix.from_dense(dense).to_dense(), dense)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matvec_plain_matches_numpy(self, m, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.integers(0, 2, (m, n)).astype(np.uint8)
        v = rng.integers(0, 2, n).astype(np.uint8)
        dm = DiagonalMatrix.from_dense(dense)
        expected = (dense.astype(np.uint64) @ v) % 2
        assert np.array_equal(dm.matvec_plain(v), expected)


@pytest.fixture
def analysis(example_forest):
    return ModelAnalysis(example_forest)


class TestThresholdPlanes:
    def test_shape_and_values(self, analysis):
        planes = build_threshold_planes(analysis, 8)
        assert planes.shape == (8, analysis.quantized_branching)
        assert from_bitplanes(planes) == analysis.padded_thresholds()

    def test_precision_overflow_rejected(self, analysis):
        with pytest.raises(CompileError):
            build_threshold_planes(analysis, 4)


class TestReshuffleMatrix:
    def test_row_column_structure(self, analysis):
        dense = build_reshuffle_dense(analysis)
        assert dense.shape == (analysis.branching, analysis.quantized_branching)
        # Exactly one 1 per row, at most one per column (Section 4.2.2).
        assert np.all(dense.sum(axis=1) == 1)
        assert np.all(dense.sum(axis=0) <= 1)

    def test_reshuffle_reorders_decisions(self, analysis, example_forest):
        dense = build_reshuffle_dense(analysis)
        rng = np.random.default_rng(0)
        for _ in range(20):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            replicated = analysis.replicated_features(feats)
            padded = analysis.padded_thresholds()
            decisions = np.array(
                [1 if x < t else 0 for x, t in zip(replicated, padded)],
                dtype=np.uint8,
            )
            branches = (dense @ decisions) % 2
            expected = [
                1 if feats[analysis.branch(i).feature] < analysis.branch(i).threshold
                else 0
                for i in range(analysis.branching)
            ]
            assert branches.tolist() == expected

    def test_diagonal_form_consistent(self, analysis):
        dm = build_reshuffle_matrix(analysis)
        assert np.array_equal(dm.to_dense(), build_reshuffle_dense(analysis))


class TestLevelMatrices:
    def test_one_hot_rows(self, analysis):
        for level in range(1, analysis.max_depth + 1):
            dense = build_level_dense(analysis, level)
            assert dense.shape == (analysis.num_labels, analysis.branching)
            assert np.all(dense.sum(axis=1) == 1)

    def test_column_popcount_at_own_level(self, analysis):
        """At a branch's own level, its column popcount equals its width
        (Section 4.2.3)."""
        for branch_idx in range(analysis.branching):
            level = analysis.branch_level(branch_idx)
            dense = build_level_dense(analysis, level)
            width = analysis.branch_width(branch_idx)
            assert int(dense[:, branch_idx].sum()) == width

    def test_all_levels_and_masks_built(self, analysis):
        levels = build_all_levels(analysis)
        masks = build_all_masks(analysis)
        assert len(levels) == analysis.max_depth
        assert len(masks) == analysis.max_depth
        for matrix, mask in zip(levels, masks):
            assert matrix.rows == analysis.num_labels
            assert mask.shape == (analysis.num_labels,)

    def test_mask_encoding(self, analysis):
        for level in range(1, analysis.max_depth + 1):
            mask = build_level_mask(analysis, level)
            for label_idx, sel in enumerate(analysis.selected_branches(level)):
                assert mask[label_idx] == (0 if sel.under_true else 1)


class TestAlgebraicCorrectness:
    """The full plaintext pipeline: XOR'd level vectors multiply to the
    label bitvector — the algebra of Sections 4.2.3-4.2.4 end to end,
    without any encryption involved."""

    @pytest.mark.parametrize("seed", range(6))
    def test_plaintext_pipeline_matches_oracle(self, seed):
        forest = random_forest(
            np.random.default_rng(seed), [6, 8], max_depth=5, n_features=3
        )
        analysis = ModelAnalysis(forest)
        reshuffle = build_reshuffle_dense(analysis)
        levels = [
            build_level_dense(analysis, lvl)
            for lvl in range(1, analysis.max_depth + 1)
        ]
        masks = [
            build_level_mask(analysis, lvl)
            for lvl in range(1, analysis.max_depth + 1)
        ]
        rng = np.random.default_rng(seed + 100)
        padded = analysis.padded_thresholds()
        for _ in range(15):
            feats = [int(v) for v in rng.integers(0, 256, 3)]
            replicated = analysis.replicated_features(feats)
            decisions = np.array(
                [1 if x < t else 0 for x, t in zip(replicated, padded)],
                dtype=np.uint8,
            )
            branches = (reshuffle @ decisions) % 2
            result = np.ones(analysis.num_labels, dtype=np.uint8)
            for matrix, mask in zip(levels, masks):
                level_decisions = (matrix @ branches) % 2
                result &= np.bitwise_xor(level_decisions, mask)
            assert result.tolist() == forest.label_bitvector(feats)
