"""Tests for the EVA-style IR: builder, passes, executor, COPSE staging.

The IR toolkit is exercised through the *public* package API (``repro``
top-level exports) — since the plan-compiled execution path the IR is a
load-bearing layer, not an internal detail, and these tests pin the
export surface along with the behavior.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CopseCompiler,
    FheContext,
    IrBuilder,
    IrOp,
    analyze_counts,
    analyze_depth,
    build_inference_graph,
    common_subexpression_elimination,
    dead_code_elimination,
    execute,
    fuse_rotations,
    ir_secure_inference,
    optimize,
)
from repro.errors import CompileError, RuntimeProtocolError
from repro.core.seccomp import VARIANT_ALOUFI, VARIANT_OPTIMIZED
from repro.forest.synthetic import random_forest


class TestBuilder:
    def test_plain_constant_folding(self):
        b = IrBuilder()
        c = b.xor(b.const([1, 0, 1]), b.const([1, 1, 0]))
        node = b.graph.node(c)
        assert node.op is IrOp.CONST_PT
        assert node.attr == (0, 1, 1)

    def test_and_constant_folding(self):
        b = IrBuilder()
        c = b.and_(b.const([1, 0, 1]), b.const([1, 1, 0]))
        assert b.graph.node(c).attr == (1, 0, 0)

    def test_rotate_zero_is_identity(self):
        b = IrBuilder()
        x = b.input_ct("x", 4)
        assert b.rotate(x, 0) is x or b.rotate(x, 0) == x
        assert b.rotate(x, 4) == x  # full-width rotation

    def test_rotate_fusion_at_build(self):
        b = IrBuilder()
        x = b.input_ct("x", 8)
        r = b.rotate(b.rotate(x, 3), 2)
        node = b.graph.node(r)
        assert node.op is IrOp.ROTATE
        assert node.attr == (5,)
        assert node.args == (x,)

    def test_rotate_constant_folds(self):
        b = IrBuilder()
        r = b.rotate(b.const([1, 0, 0]), 1)
        assert b.graph.node(r).attr == (0, 0, 1)

    def test_width_mismatch_rejected(self):
        b = IrBuilder()
        x = b.input_ct("x", 3)
        y = b.input_ct("y", 4)
        with pytest.raises(CompileError):
            b.xor(x, y)

    def test_extend_truncate_bounds(self):
        b = IrBuilder()
        x = b.input_ct("x", 4)
        with pytest.raises(CompileError):
            b.extend(x, 2)
        with pytest.raises(CompileError):
            b.truncate(x, 6)
        assert b.extend(x, 4) == x
        assert b.truncate(x, 4) == x

    def test_commutative_canonicalization(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        y = b.input_ct("y", 2)
        assert b.graph.node(b.xor(x, y)).args == b.graph.node(b.xor(y, x)).args

    def test_duplicate_names_rejected(self):
        b = IrBuilder()
        b.input_ct("x", 2)
        with pytest.raises(CompileError):
            b.input_ct("x", 2)

    def test_empty_reduce_rejected(self):
        b = IrBuilder()
        with pytest.raises(CompileError):
            b.xor_all([])


class TestExecutor:
    def _session(self):
        ctx = FheContext()
        keys = ctx.keygen()
        return ctx, keys

    def test_simple_circuit(self):
        b = IrBuilder()
        x = b.input_ct("x", 4)
        y = b.input_ct("y", 4)
        b.output("xor", b.xor(x, y))
        b.output("and", b.and_(x, y))
        b.output("rot", b.rotate(x, 1))
        graph = b.build()

        ctx, keys = self._session()
        out = execute(
            graph,
            ctx,
            {
                "x": ctx.encrypt([1, 0, 1, 0], keys.public),
                "y": ctx.encrypt([1, 1, 0, 0], keys.public),
            },
        )
        assert ctx.decrypt_bits(out["xor"], keys.secret) == [0, 1, 1, 0]
        assert ctx.decrypt_bits(out["and"], keys.secret) == [1, 0, 0, 0]
        assert ctx.decrypt_bits(out["rot"], keys.secret) == [0, 1, 0, 1]

    def test_plain_inputs_and_constants(self):
        b = IrBuilder()
        x = b.input_ct("x", 3)
        m = b.input_pt("mask", 3)
        b.output("masked", b.and_(x, m))
        b.output("notted", b.negate(x))
        graph = b.build()

        ctx, keys = self._session()
        out = execute(
            graph,
            ctx,
            {
                "x": ctx.encrypt([1, 1, 0], keys.public),
                "mask": ctx.encode([1, 0, 1]),
            },
        )
        assert ctx.decrypt_bits(out["masked"], keys.secret) == [1, 0, 0]
        assert ctx.decrypt_bits(out["notted"], keys.secret) == [0, 0, 1]

    def test_missing_binding_rejected(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        b.output("y", b.negate(x))
        graph = b.build()
        ctx, _ = self._session()
        with pytest.raises(RuntimeProtocolError, match="unbound"):
            execute(graph, ctx, {})

    def test_wrong_binding_type_rejected(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        b.output("y", b.negate(x))
        graph = b.build()
        ctx, keys = self._session()
        with pytest.raises(RuntimeProtocolError, match="ciphertext"):
            execute(graph, ctx, {"x": ctx.encode([1, 0])})

    def test_wrong_binding_width_rejected(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        b.output("y", b.negate(x))
        graph = b.build()
        ctx, keys = self._session()
        with pytest.raises(RuntimeProtocolError, match="width"):
            execute(graph, ctx, {"x": ctx.encrypt([1, 0, 1], keys.public)})


class TestPasses:
    def test_cse_merges_duplicates(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        y = b.input_ct("y", 2)
        # Build the same product twice without builder-level caching.
        p1 = b.graph.add(IrOp.MULTIPLY, (x, y), width=2)
        p2 = b.graph.add(IrOp.MULTIPLY, (x, y), width=2)
        b.output("a", p1)
        b.output("b", p2)
        graph = common_subexpression_elimination(b.build())
        assert graph.outputs["a"] == graph.outputs["b"]
        assert analyze_counts(graph)[IrOp.MULTIPLY] == 1

    def test_cse_keeps_distinct_inputs(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        y = b.input_ct("y", 2)
        b.output("o", b.xor(x, y))
        graph = common_subexpression_elimination(b.build())
        assert len(graph.inputs) == 2

    def test_fuse_rotations_pass(self):
        b = IrBuilder()
        x = b.input_ct("x", 8)
        # Defeat the builder's own fusion by inserting raw nodes.
        r1 = b.graph.add(IrOp.ROTATE, (x,), attr=(3,), width=8)
        r2 = b.graph.add(IrOp.ROTATE, (r1,), attr=(5,), width=8)
        b.output("o", r2)
        graph = dead_code_elimination(fuse_rotations(b.build()))
        # 3 + 5 = 8 = full width: the rotation disappears entirely.
        assert analyze_counts(graph).get(IrOp.ROTATE, 0) == 0
        assert graph.outputs["o"] == graph.inputs["x"]

    def test_dce_removes_unused(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        y = b.input_ct("y", 2)
        b.and_(x, y)  # dead
        b.output("o", b.xor(x, y))
        graph = dead_code_elimination(b.build())
        assert analyze_counts(graph).get(IrOp.MULTIPLY, 0) == 0
        assert analyze_counts(graph)[IrOp.ADD] == 1

    def test_dce_keeps_inputs(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        b.input_ct("unused", 2)
        b.output("o", b.negate(x))
        graph = dead_code_elimination(b.build())
        assert "unused" in graph.inputs

    def test_depth_analysis(self):
        b = IrBuilder()
        x = b.input_ct("x", 2)
        y = b.input_ct("y", 2)
        level1 = b.and_(x, y)
        level2 = b.and_(level1, y)
        b.output("o", b.xor(level2, x))
        assert analyze_depth(b.build()) == 2

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_optimize_preserves_semantics(self, seed):
        """Random circuits compute the same thing before and after the
        optimizer pipeline."""
        rng = np.random.default_rng(seed)
        b = IrBuilder()
        width = 6
        pool = [b.input_ct("x", width), b.input_ct("y", width)]
        pool.append(b.const(rng.integers(0, 2, width)))
        for _ in range(20):
            choice = rng.integers(0, 4)
            a = pool[rng.integers(0, len(pool))]
            c = pool[rng.integers(0, len(pool))]
            if choice == 0:
                pool.append(b.xor(a, c))
            elif choice == 1:
                pool.append(b.and_(a, c))
            elif choice == 2:
                pool.append(b.rotate(a, int(rng.integers(0, width))))
            else:
                pool.append(b.negate(a))
        # XOR with a ciphertext input so the output is always encrypted.
        b.output("o", b.xor(pool[-1], pool[0]))
        graph = b.build()
        optimized = optimize(graph)
        assert optimized.num_nodes <= graph.num_nodes

        ctx = FheContext()
        keys = ctx.keygen()
        bindings = {
            "x": ctx.encrypt(rng.integers(0, 2, width), keys.public),
            "y": ctx.encrypt(rng.integers(0, 2, width), keys.public),
        }
        raw_out = execute(graph, ctx, bindings)["o"]
        opt_out = execute(optimized, ctx, dict(bindings))["o"]
        assert ctx.decrypt_bits(raw_out, keys.secret) == ctx.decrypt_bits(
            opt_out, keys.secret
        )


class TestCopseIr:
    @pytest.fixture(scope="class")
    def setup(self):
        forest = random_forest(np.random.default_rng(0), [7, 8], max_depth=5)
        compiled = CopseCompiler(precision=8).compile(forest)
        return forest, compiled

    @pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_matches_direct_runtime(self, setup, variant, encrypted_model):
        forest, compiled = setup
        rng = np.random.default_rng(1)
        for _ in range(3):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            ir_out = ir_secure_inference(
                compiled,
                feats,
                encrypted_model=encrypted_model,
                variant=variant,
            )
            assert ir_out.result.bitvector == forest.label_bitvector(feats)

    def test_unoptimized_also_correct(self, setup):
        forest, compiled = setup
        out = ir_secure_inference(compiled, [7, 9], optimize_graph=False)
        assert out.result.bitvector == forest.label_bitvector([7, 9])

    def test_optimizer_shares_level_extensions(self, setup):
        """The headline: CSE collapses per-level extensions to one set,
        beating the hand-scheduled runtime by (d-1)*b rotations."""
        _, compiled = setup
        raw = build_inference_graph(compiled)
        opt = optimize(raw)
        d, b = compiled.max_depth, compiled.branching
        raw_counts = analyze_counts(raw)
        opt_counts = analyze_counts(opt)
        assert raw_counts[IrOp.EXTEND] == d * b
        assert opt_counts[IrOp.EXTEND] == b
        # Rotations shrink strictly; depth is untouched.
        assert opt_counts[IrOp.ROTATE] < raw_counts[IrOp.ROTATE]
        assert analyze_depth(opt) == analyze_depth(raw)

    def test_graph_reuse_across_queries(self, setup):
        forest, compiled = setup
        graph = optimize(build_inference_graph(compiled))
        for feats in ([1, 2], [200, 100]):
            out = ir_secure_inference(compiled, feats, graph=graph)
            assert out.result.bitvector == forest.label_bitvector(feats)

    def test_domain_checks(self, setup):
        _, compiled = setup
        with pytest.raises(RuntimeProtocolError):
            ir_secure_inference(compiled, [1, 2, 3])
        with pytest.raises(RuntimeProtocolError):
            ir_secure_inference(compiled, [999, 0])
