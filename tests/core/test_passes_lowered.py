"""Optimizer-pass properties on *lowered* graphs, not hand-built toys.

The pass pipeline became load-bearing with the plan-compiled execution
path, so its contract is pinned on the graphs it actually optimizes:
full single-query and batched inference lowerings of compiled models.

Properties: ``optimize`` reaches a fixed point within its iteration
budget, is idempotent (a second run changes nothing), never increases
multiplicative depth (or analyzed cost), and preserves executor output
bit-for-bit on randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CopseCompiler,
    FheContext,
    analyze_cost,
    analyze_depth,
    execute,
    lower_batched_inference,
    lower_inference,
    optimize,
)
from repro.core.runtime import DataOwner, ModelOwner
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.forest.synthetic import random_forest
from repro.ir.copse_ir import OUTPUT_LABELS, build_inference_graph
from repro.ir.plan import build_batched_inference_graph
from repro.serve import plan_layout
from repro.serve.batched_runtime import encrypt_batch

PRECISION = 6


@pytest.fixture(scope="module")
def compiled():
    forest = random_forest(
        np.random.default_rng(3),
        branches_per_tree=[5, 7],
        max_depth=4,
        n_features=3,
        precision=PRECISION,
    )
    compiled = CopseCompiler(precision=PRECISION).compile(forest)
    return forest, compiled


@pytest.fixture(scope="module")
def layout(compiled):
    _, model = compiled
    return plan_layout(
        model, EncryptionParams.paper_defaults(), max_batch_size=3
    )


def lowered_graphs(compiled, layout):
    """Every live lowering shape: single/batched x encrypted/plaintext."""
    _, model = compiled
    return {
        "single/enc": build_inference_graph(model, encrypted_model=True),
        "single/plain": build_inference_graph(model, encrypted_model=False),
        "batched/enc": build_batched_inference_graph(
            model, layout, encrypted_model=True
        ),
        "batched/plain": build_batched_inference_graph(
            model, layout, encrypted_model=False
        ),
    }


def graph_signature(graph):
    """Structural identity: node keys in order, plus the interface."""
    return (
        [(n.op, n.args, n.attr, n.width, n.is_cipher) for n in graph.nodes],
        dict(graph.inputs),
        dict(graph.outputs),
    )


class TestFixedPoint:
    def test_optimize_reaches_fixed_point_and_is_idempotent(
        self, compiled, layout
    ):
        for name, raw in lowered_graphs(compiled, layout).items():
            once = optimize(raw)
            twice = optimize(once)
            assert graph_signature(twice) == graph_signature(once), name
            # A fixed point of every individual pass, too: one more
            # whole-pipeline sweep at max_iterations=1 must be identity.
            assert graph_signature(optimize(once, max_iterations=1)) == (
                graph_signature(once)
            ), name

    def test_optimize_never_increases_depth_or_cost(self, compiled, layout):
        cost_model = CostModel(EncryptionParams.paper_defaults())
        for name, raw in lowered_graphs(compiled, layout).items():
            opt = optimize(raw)
            assert analyze_depth(opt) <= analyze_depth(raw), name
            assert analyze_cost(opt, cost_model) <= analyze_cost(
                raw, cost_model
            ), name
            assert opt.num_nodes <= raw.num_nodes, name

    def test_optimize_preserves_interface(self, compiled, layout):
        for name, raw in lowered_graphs(compiled, layout).items():
            opt = optimize(raw)
            assert set(opt.inputs) == set(raw.inputs), name
            assert set(opt.outputs) == set(raw.outputs), name


class TestSemanticPreservation:
    @given(st.lists(
        st.integers(min_value=0, max_value=(1 << PRECISION) - 1),
        min_size=3, max_size=3,
    ))
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_single_query_lowering(self, compiled, layout, features):
        """Raw and optimized lowered graphs compute identical bits (and
        match the oracle) on randomized feature vectors."""
        forest, model = compiled
        plan_raw = lower_inference(model, optimize_graph=False)
        plan_opt = lower_inference(model)

        ctx = FheContext()
        keys = ctx.keygen()
        maurice = ModelOwner(model)
        query = DataOwner(maurice.query_spec(), keys).prepare_query(
            ctx, features
        )
        enc_model = maurice.encrypt_model(ctx, keys.public)

        bindings = plan_raw.bindings_for(ctx, enc_model, query)
        raw_out = execute(plan_raw.graph, ctx, bindings)[OUTPUT_LABELS]
        opt_out = execute(plan_opt.graph, ctx, dict(bindings))[OUTPUT_LABELS]

        raw_bits = ctx.decrypt_bits(raw_out, keys.secret)
        opt_bits = ctx.decrypt_bits(opt_out, keys.secret)
        assert raw_bits == opt_bits == forest.label_bitvector(features)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_batched_lowering(self, compiled, layout, query_seed):
        """Raw and optimized batched lowerings agree slot-for-slot."""
        forest, model = compiled
        plan_raw = lower_batched_inference(
            model, layout, optimize_graph=False
        )
        plan_opt = lower_batched_inference(model, layout)

        rng = np.random.default_rng(query_seed)
        queries = [
            [int(v) for v in rng.integers(0, 1 << PRECISION, 3)]
            for _ in range(layout.capacity)
        ]

        ctx = FheContext()
        keys = ctx.keygen()
        from repro.serve.batched_runtime import build_batched_model

        batched_model = build_batched_model(
            ctx, model, layout, public_key=keys.public
        )
        query = encrypt_batch(ctx, layout, queries, keys)

        bindings = plan_raw.bindings_for(ctx, batched_model, query)
        raw_out = execute(plan_raw.graph, ctx, bindings)[OUTPUT_LABELS]
        opt_out = execute(plan_opt.graph, ctx, dict(bindings))[OUTPUT_LABELS]
        assert ctx.decrypt_bits(raw_out, keys.secret) == ctx.decrypt_bits(
            opt_out, keys.secret
        )

        from repro.serve.packing import demux_bitvectors

        demuxed = demux_bitvectors(
            layout,
            ctx.decrypt_bits(opt_out, keys.secret),
            len(queries),
        )
        assert demuxed == [forest.label_bitvector(q) for q in queries]
