"""Tests for the fixed-point codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PrecisionError
from repro.core.fixedpoint import FixedPointCodec


class TestCodec:
    def test_endpoints(self):
        codec = FixedPointCodec(precision=8, lo=0.0, hi=255.0)
        assert codec.encode(0.0) == 0
        assert codec.encode(255.0) == 255

    def test_midpoint(self):
        codec = FixedPointCodec(precision=8, lo=0.0, hi=2.0)
        assert codec.encode(1.0) in (127, 128)

    def test_out_of_range_rejected(self):
        codec = FixedPointCodec(precision=8, lo=0.0, hi=1.0)
        with pytest.raises(PrecisionError):
            codec.encode(1.5)
        with pytest.raises(PrecisionError):
            codec.encode(-0.1)

    def test_invalid_precision(self):
        with pytest.raises(PrecisionError):
            FixedPointCodec(precision=0)
        with pytest.raises(PrecisionError):
            FixedPointCodec(precision=63)

    def test_invalid_range(self):
        with pytest.raises(PrecisionError):
            FixedPointCodec(precision=8, lo=1.0, hi=1.0)

    def test_decode_bounds(self):
        codec = FixedPointCodec(precision=4, lo=0.0, hi=15.0)
        assert codec.decode(0) == 0.0
        assert codec.decode(15) == 15.0
        with pytest.raises(PrecisionError):
            codec.decode(16)
        with pytest.raises(PrecisionError):
            codec.decode(-1)

    def test_check_code(self):
        codec = FixedPointCodec(precision=4)
        assert codec.check_code(15) == 15
        with pytest.raises(PrecisionError):
            codec.check_code(16)

    def test_encode_many(self):
        codec = FixedPointCodec(precision=8, lo=0.0, hi=255.0)
        assert codec.encode_many([0.0, 255.0]) == [0, 255]

    def test_for_data(self):
        codec = FixedPointCodec.for_data(8, [1.0, 5.0], [3.0, 9.0])
        assert codec.lo == 1.0
        assert codec.hi == 9.0

    def test_for_data_constant_column(self):
        codec = FixedPointCodec.for_data(8, [2.0, 2.0])
        assert codec.hi > codec.lo

    @given(
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_order_preserved(self, a, b):
        codec = FixedPointCodec(precision=10, lo=-100.0, hi=100.0)
        ca, cb = codec.encode(a), codec.encode(b)
        if a < b:
            assert ca <= cb
        elif a > b:
            assert ca >= cb

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_within_quantum(self, code):
        codec = FixedPointCodec(precision=8, lo=0.0, hi=255.0)
        value = codec.decode(code)
        assert codec.encode(value) == code
