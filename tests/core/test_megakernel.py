"""Locks for the zero-dispatch megakernel (`repro.ir.megakernel`).

Covers the megakernel tier's specific risks: the register plane must be
preallocated once and bounded by the liveness analysis (not one row per
instruction), the capture/replay bookkeeping must be byte-identical to
the tape's — counts, multiplicative depth, and noise-*failure* points
included — the book cache must canonicalize key identity so fresh
per-batch key sets hit the same entry, the fail-closed fingerprint
refusal must match the tape's and the plan's byte-for-byte, and a
pickled kernel must rebuild its compiled plane lazily from nothing but
the tape.
"""

import pickle

import numpy as np
import pytest

from repro.core.compiler import CopseCompiler
from repro.core.runtime import CopseServer, DataOwner, ModelOwner
from repro.errors import (
    NoiseBudgetExceededError,
    RuntimeProtocolError,
    ValidationError,
)
from repro.fhe.ciphertext import PlainVector
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams
from repro.forest.synthetic import random_forest
from repro.ir import IrBuilder, execute, lower_inference
from repro.ir.executor import tile_plain_extend
from repro.ir.megakernel import compile_megakernel
from repro.ir.tape import compile_tape


PARAMS = EncryptionParams.paper_defaults()
SHALLOW = EncryptionParams(bits=160)  # depth capacity 4


def small_forest(seed=7, branches=(4, 5), depth=3):
    return random_forest(
        np.random.default_rng(seed),
        branches_per_tree=list(branches),
        max_depth=depth,
        n_features=2,
        precision=4,
    )


def small_compiled(seed=7):
    return CopseCompiler(precision=4).compile(small_forest(seed))


def inference_setup(backend="vector", encrypted_model=True, seed=7):
    """(tape, kernel, ctx, keys, model, query, expected_bits)."""
    compiled = small_compiled(seed)
    plan = lower_inference(compiled, encrypted_model=encrypted_model)
    tape = plan.compile_tape()
    kernel = compile_megakernel(tape)
    ctx = FheContext(PARAMS, backend=backend)
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    query = DataOwner(maurice.query_spec(), keys).prepare_query(ctx, [1, 2])
    model = (
        maurice.encrypt_model(ctx, keys.public)
        if encrypted_model
        else maurice.plaintext_model(ctx)
    )
    expected = small_forest(seed).label_bitvector([1, 2])
    return tape, kernel, ctx, keys, model, query, expected


def deep_multiply_tape(width=8, depth=8):
    """A multiply chain deep enough to exhaust SHALLOW's noise budget."""
    b = IrBuilder()
    x = b.input_ct("x", width)
    acc = x
    for _ in range(depth):
        acc = b.and_(acc, x)
    b.output("out", acc)
    return compile_tape(b.build())


class TestCompiledPlane:
    def test_preallocation_bounded_by_liveness(self):
        """The register plane holds peak-live values plus the constant
        pool — never one row per instruction."""
        tape, kernel, *_ = inference_setup()
        assert kernel.supported
        assert 0 < kernel.data_rows <= kernel.num_rows
        assert kernel.data_rows < kernel.num_instructions
        assert 0 < kernel.num_segments <= kernel.num_blocks
        assert kernel.num_blocks <= kernel.num_instructions
        # Metadata passthrough: one source of truth, the tape.
        assert kernel.peak_live == tape.peak_live
        assert kernel.rotations == tape.rotations
        assert kernel.describe().startswith("megakernel:")

    def test_register_plane_reused_across_runs(self):
        """The per-thread buffer is allocated once; repeated runs reuse
        the same plane and compiled step closures."""
        _, kernel, ctx, keys, model, query, expected = inference_setup()
        first = kernel.run(ctx, model, query)
        state = kernel._local.state
        second = kernel.run(ctx, model, query)
        assert kernel._local.state is state
        assert ctx.decrypt_bits(first, keys.secret) == expected
        assert ctx.decrypt_bits(second, keys.secret) == expected


class TestBookkeepingParity:
    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_counts_depth_and_bits_match_tape(self, encrypted_model):
        """On the vector backend the replayed bulk bookkeeping must be
        byte-identical to the tape loop's: same per-kind counts, same
        multiplicative depth, same decrypted bits."""
        tape, kernel, ctx_t, keys, model, query, expected = inference_setup(
            encrypted_model=encrypted_model
        )
        taped = tape.run(ctx_t, model, query, phase="parity")
        ctx_k = FheContext(PARAMS, backend="vector")
        kerneled = kernel.run(ctx_k, model, query, phase="parity")
        assert ctx_k.decrypt_bits(kerneled, keys.secret) == expected
        assert ctx_t.decrypt_bits(taped, keys.secret) == expected
        assert (
            ctx_k.tracker.phase_stats("parity").as_dict()
            == ctx_t.tracker.phase_stats("parity").as_dict()
        )
        assert (
            ctx_k.tracker.multiplicative_depth()
            == ctx_t.tracker.multiplicative_depth()
        )

    def test_book_cache_canonicalizes_fresh_key_sets(self):
        """Serve mints fresh keys per batch; the signature canonicalizes
        key ids by first appearance, so every batch hits one book."""
        compiled = small_compiled()
        tape = lower_inference(compiled).compile_tape()
        kernel = compile_megakernel(tape)
        maurice = ModelOwner(compiled)
        ctx = FheContext(PARAMS, backend="vector")
        expected = small_forest().label_bitvector([1, 2])
        for _ in range(2):
            keys = ctx.keygen()
            query = DataOwner(maurice.query_spec(), keys).prepare_query(
                ctx, [1, 2]
            )
            model = maurice.encrypt_model(ctx, keys.public)
            result = kernel.run(ctx, model, query)
            assert ctx.decrypt_bits(result, keys.secret) == expected
        assert len(kernel._book) == 1

    def test_noise_failure_replays_identically(self):
        """A budget overflow must raise the tape's exact error — on the
        first (captured) run and on cached replays — with the partial
        counts the tape would have left behind."""
        tape = deep_multiply_tape()
        kernel = compile_megakernel(tape)

        setup = FheContext(SHALLOW, backend="vector")
        keys = setup.keygen()
        ct = setup.encrypt(np.ones(8, dtype=np.uint8), keys.public)

        ctx_t = FheContext(SHALLOW, backend="vector")
        with pytest.raises(NoiseBudgetExceededError) as tape_err:
            tape.execute(ctx_t, {"x": ct}, phase="parity")

        ctx_k = FheContext(SHALLOW, backend="vector")
        with pytest.raises(NoiseBudgetExceededError) as kernel_err:
            kernel.execute(ctx_k, {"x": ct}, phase="parity")
        assert str(kernel_err.value) == str(tape_err.value)
        assert ctx_k.tracker.total_counts() == ctx_t.tracker.total_counts()

        # Cached replay: same bookkeeping, same exception, no execution.
        ctx_r = FheContext(SHALLOW, backend="vector")
        with pytest.raises(NoiseBudgetExceededError) as replay_err:
            kernel.execute(ctx_r, {"x": ct}, phase="parity")
        assert str(replay_err.value) == str(tape_err.value)
        assert ctx_r.tracker.total_counts() == ctx_t.tracker.total_counts()
        assert len(kernel._book) == 1


class TestFingerprintFailClosed:
    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_refuses_foreign_model_like_tape(self, encrypted_model):
        """A kernel compiled for model A must refuse a shape-identical
        model B — byte-identically to the tape's refusal."""
        compiled_a = small_compiled(seed=7)
        compiled_b = small_compiled(seed=8)
        assert compiled_a.fingerprint() != compiled_b.fingerprint()
        tape_a = lower_inference(
            compiled_a, encrypted_model=encrypted_model
        ).compile_tape()
        kernel_a = compile_megakernel(tape_a)

        ctx = FheContext(PARAMS, backend="vector")
        keys = ctx.keygen()
        maurice_b = ModelOwner(compiled_b)
        query = DataOwner(maurice_b.query_spec(), keys).prepare_query(
            ctx, [1, 2]
        )
        model_b = (
            maurice_b.encrypt_model(ctx, keys.public)
            if encrypted_model
            else maurice_b.plaintext_model(ctx)
        )
        server = CopseServer(ctx, engine="megakernel", megakernel=kernel_a)
        with pytest.raises(RuntimeProtocolError) as kernel_err:
            server.classify(model_b, query)
        tape_server = CopseServer(ctx, engine="tape", tape=tape_a)
        with pytest.raises(RuntimeProtocolError) as tape_err:
            tape_server.classify(model_b, query)
        assert str(kernel_err.value) == str(tape_err.value)

        # Every bind re-checks: a second impostor after a successful
        # bind (layout cache warm) is refused with the same message.
        maurice_a = ModelOwner(compiled_a)
        query_a = DataOwner(maurice_a.query_spec(), keys).prepare_query(
            ctx, [1, 2]
        )
        model_a = (
            maurice_a.encrypt_model(ctx, keys.public)
            if encrypted_model
            else maurice_a.plaintext_model(ctx)
        )
        result = server.classify(model_a, query_a)
        expected = small_forest(seed=7).label_bitvector([1, 2])
        assert ctx.decrypt_bits(result, keys.secret) == expected
        with pytest.raises(RuntimeProtocolError) as warm_err:
            server.classify(model_b, query)
        assert str(warm_err.value) == str(tape_err.value)


class TestPickleRoundTrip:
    def test_registered_megakernel_ships_and_rebuilds(self):
        """ShippedModel carries the kernel; the clone rebuilds its
        compiled plane and book cache lazily from the tape alone."""
        from repro.serve.registry import ModelRegistry
        from repro.serve.transport import ShippedModel

        registered = ModelRegistry().register(
            "mk-pickle",
            small_forest(),
            precision=4,
            max_batch_size=4,
            backend="vector",
            engine="megakernel",
        )
        assert registered.megakernel is not None
        envelope = ShippedModel.from_registered(registered)
        clone = pickle.loads(pickle.dumps(envelope, pickle.HIGHEST_PROTOCOL))
        assert clone.verify() == registered.compiled.fingerprint()
        kernel = clone.megakernel
        assert kernel is not None
        # Lazy state dropped in transit, rebuilt worker-side on demand.
        assert kernel._plan is None and kernel._book == {}
        assert kernel.model_fingerprint == (
            registered.tape.model_fingerprint
        )
        assert kernel.supported
        assert kernel.num_instructions == registered.tape.num_instructions


class TestExtendZeroWidth:
    """Bugfix lock: a zero-width plain operand reaching EXTEND must
    raise ValidationError naming the input — not a bare
    ZeroDivisionError from the ceil-division tiling — identically on
    every engine."""

    def test_tile_helper_rejects_empty_operand(self):
        with pytest.raises(ValidationError) as err:
            tile_plain_extend(np.zeros(0, dtype=np.uint8), 6, "IR node 0")
        assert "zero-length vector has no cyclic extension" in str(err.value)
        # The non-degenerate tiling is the ceil-division cyclic extend.
        tiled = tile_plain_extend(
            np.array([1, 0], dtype=np.uint8), 5, "IR node 0"
        )
        assert tiled.tolist() == [1, 0, 1, 0, 1]

    def test_engines_raise_validation_error(self):
        b = IrBuilder()
        p = b.input_pt("p", 0)
        b.output("out", b.extend(p, 6))
        graph = b.build()
        # A zero-width PlainVector cannot be built through the public
        # constructor (coerce_bits refuses empties), so forge one — the
        # hostile binding the executor must survive gracefully.
        empty = object.__new__(PlainVector)
        empty._slots = np.zeros(0, dtype=np.uint8)
        ctx = FheContext(PARAMS, backend="vector")

        with pytest.raises(ValidationError) as graph_err:
            execute(graph, ctx, {"p": empty}, phase=None)

        # The engines name their own operand (IR node vs tape register)
        # but share the diagnostic through the one tiling helper.
        tail = (
            "to 6 slots: the plain operand has width 0, and a "
            "zero-length vector has no cyclic extension"
        )
        assert str(graph_err.value) == f"cannot EXTEND IR node 0 {tail}"

        tape = compile_tape(graph)
        with pytest.raises(ValidationError) as tape_err:
            tape.execute(ctx, {"p": empty})
        assert str(tape_err.value).startswith("cannot EXTEND ")
        assert str(tape_err.value).endswith(tail)

        # The megakernel's gather grammar refuses zero-width inputs at
        # compile time, so it falls back to the tape loop — and raises
        # the tape's identical error.
        kernel = compile_megakernel(tape)
        assert not kernel.supported
        with pytest.raises(ValidationError) as kernel_err:
            kernel.execute(ctx, {"p": empty})
        assert str(kernel_err.value) == str(tape_err.value)
