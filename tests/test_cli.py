"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.forest.serialize import dumps_forest
from repro.forest.synthetic import random_forest


@pytest.fixture
def model_file(tmp_path):
    forest = random_forest(np.random.default_rng(1), [6, 7], max_depth=4)
    path = tmp_path / "model.txt"
    path.write_text(dumps_forest(forest))
    return str(path), forest


class TestInfo:
    def test_prints_statistics(self, model_file, capsys):
        path, forest = model_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert f"b={forest.branching}" in out
        assert "selected parameters" in out
        assert f"K={forest.max_multiplicity}" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/model.txt"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_model(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("this is not a model\n")
        assert main(["info", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCompile:
    def test_stages_module(self, model_file, tmp_path, capsys):
        path, forest = model_file
        out_path = tmp_path / "staged.py"
        assert main(["compile", path, "-o", str(out_path)]) == 0
        assert out_path.exists()
        source = out_path.read_text()
        assert "Auto-generated" in source
        assert "def classify" in source

        # The staged module actually works.
        from repro.core.codegen import exec_generated_module
        from repro.core.runtime import DataOwner
        from repro.fhe.context import FheContext

        staged = exec_generated_module(source)
        ctx = FheContext()
        keys = ctx.keygen()
        enc = staged["encrypt_model"](ctx, keys.public)
        diane = DataOwner(staged["query_spec"](), keys)
        query = diane.prepare_query(ctx, [33, 99])
        result = diane.decrypt_result(
            ctx, staged["classify"](ctx, enc, query)
        )
        assert result.bitvector == forest.label_bitvector([33, 99])


class TestClassify:
    def test_encrypted_model(self, model_file, capsys):
        path, forest = model_file
        assert main(["classify", path, "--features", "33,99"]) == 0
        out = capsys.readouterr().out
        assert "plurality" in out
        assert "oracle agreement: ok" in out

    def test_plaintext_model(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "0,255", "--plaintext-model"]
        ) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_features(self, model_file, capsys):
        path, _ = model_file
        assert main(["classify", path, "--features", "a,b"]) == 2

    def test_out_of_domain_features(self, model_file, capsys):
        path, _ = model_file
        assert main(["classify", path, "--features", "999,0"]) == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("extra", [[], ["--plaintext-model"]])
    def test_plan_engine(self, model_file, capsys, extra):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "33,99", "--engine", "plan"]
            + extra
        ) == 0
        out = capsys.readouterr().out
        assert "engine: plan" in out
        assert "oracle agreement: ok" in out

    @pytest.mark.parametrize("extra", [[], ["--plaintext-model"]])
    def test_tape_engine(self, model_file, capsys, extra):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "33,99", "--engine", "tape"]
            + extra
        ) == 0
        out = capsys.readouterr().out
        assert "engine: tape" in out
        assert "oracle agreement: ok" in out

    def test_unknown_engine_rejected(self, model_file, capsys):
        path, _ = model_file
        with pytest.raises(SystemExit):
            main(["classify", path, "--features", "1,2", "--engine", "jit"])


class TestBatchClassify:
    def test_happy_path(self, model_file, capsys):
        path, forest = model_file
        assert main(
            ["batch-classify", path, "--features", "33,99;0,255;12,7",
             "--threads", "2", "--batch-size", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("oracle ok") == 3
        assert "amortized ms/query" in out

    def test_features_file(self, model_file, tmp_path, capsys):
        path, _ = model_file
        qfile = tmp_path / "queries.txt"
        qfile.write_text("33,99\n0,255\n")
        assert main(
            ["batch-classify", path, "--features-file", str(qfile)]
        ) == 0
        assert "queries served      : 2" in capsys.readouterr().out

    def test_missing_model_file(self, capsys):
        assert main(
            ["batch-classify", "/nonexistent/model.txt",
             "--features", "1,2"]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_feature_string(self, model_file, capsys):
        path, _ = model_file
        assert main(["batch-classify", path, "--features", "a,b"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_features_given(self, model_file, capsys):
        path, _ = model_file
        assert main(["batch-classify", path]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_both_feature_sources_given(self, model_file, tmp_path, capsys):
        path, _ = model_file
        qfile = tmp_path / "q.txt"
        qfile.write_text("1,2\n")
        assert main(
            ["batch-classify", path, "--features", "1,2",
             "--features-file", str(qfile)]
        ) == 2

    def test_empty_features_string(self, model_file, capsys):
        path, _ = model_file
        assert main(["batch-classify", path, "--features", ";;"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_out_of_domain_feature(self, model_file, capsys):
        path, _ = model_file
        assert main(["batch-classify", path, "--features", "999,0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_threads_and_batch_size(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["batch-classify", path, "--features", "1,2", "--threads", "0"]
        ) == 2
        assert main(
            ["batch-classify", path, "--features", "1,2",
             "--batch-size", "0"]
        ) == 2


class TestServe:
    def test_happy_path(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "5", "--threads", "2",
             "--batch-size", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "queries served      : 5" in out
        assert "oracle agreement: ok" in out
        # The compiled-tape engine is the serve default.
        assert "tape_inference" in out

    def test_eager_engine_selectable(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "4", "--threads", "1",
             "--engine", "eager"]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: ok" in out
        assert "tape_inference" not in out
        assert "phase comparison" in out

    def test_plaintext_model(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "3", "--plaintext-model"]
        ) == 0
        assert "oracle agreement: ok" in capsys.readouterr().out

    def test_missing_model_file(self, capsys):
        assert main(["serve", "/nonexistent/model.txt"]) == 2

    def test_bad_query_count(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--queries", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_threads(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--threads", "-1"]) == 2


class TestBench:
    def test_fig6_subset(self, capsys):
        assert main(
            ["bench", "fig6", "--workloads", "width55", "--queries", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "width55" in out

    def test_table6(self, capsys):
        assert main(["bench", "table6"]) == 0
        assert "depth4" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["bench", "table2", "--workloads", "width55"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["bench", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10a" in out and "Figure 10c" in out

    def test_table1_reachable(self, capsys):
        """Regression: table1 used to be implemented but not dispatchable."""
        assert main(["bench", "table1", "--workloads", "width55"]) == 0
        out = capsys.readouterr().out
        assert "Table 1(a)" in out and "Table 1(c)" in out

    def test_throughput(self, capsys):
        assert main(["bench", "throughput", "--workloads", "width55"]) == 0
        out = capsys.readouterr().out
        assert "Serving throughput" in out and "batched" in out
        assert "(16 queries)" in out  # default preserved

    def test_throughput_forwards_queries(self, capsys):
        """Regression: --queries used to be silently ignored."""
        assert main(
            ["bench", "throughput", "--workloads", "width55",
             "--queries", "5"]
        ) == 0
        assert "(5 queries)" in capsys.readouterr().out

    def test_plan_speedup(self, capsys):
        assert main(
            ["bench", "plan-speedup", "--workloads", "width55",
             "--queries", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Plan-compiled speedup" in out
        assert "plan (unoptimized)" in out
        assert "MISMATCH" not in out

    def test_soak(self, capsys):
        assert main(
            ["bench", "soak", "--workloads", "width55", "--queries", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "Soak: deadline scheduling vs offered load" in out
        assert "p99_ms" in out and "miss_rate" in out
        assert "offered_load" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestServeScheduling:
    def test_serve_with_deadline_and_max_queue(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "8", "--threads", "2",
             "--batch-size", "4", "--deadline-ms", "10000",
             "--max-queue", "64"]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: ok" in out
        assert "deadline misses" in out
        assert "scheduling:" in out

    def test_serve_rejects_bad_deadline(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--deadline-ms", "0"]) == 2
        assert "--deadline-ms" in capsys.readouterr().err

    def test_serve_rejects_bad_max_queue(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--max-queue", "0"]) == 2
        assert "--max-queue" in capsys.readouterr().err

    def test_serve_sheds_when_queue_bounded(self, model_file, capsys):
        """A tiny bound on a single worker forces visible admission
        control instead of unbounded queueing."""
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "24", "--threads", "1",
             "--batch-size", "2", "--max-queue", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: ok" in out

    def test_autoscale_scales_down_after_drain(self, model_file, capsys):
        """Bugfix lock: once load ends the control plane keeps ticking
        long enough for the sustain-down counter to fire, so an idle
        over-provisioned pool scales down before the report prints
        (previously no post-drain ticks meant no scale-down, ever)."""
        import re

        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "6", "--threads", "2",
             "--batch-size", "3", "--autoscale",
             "--workers-min", "1", "--workers-max", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle agreement: ok" in out
        assert "control plane:" in out
        # The drained plant is idle with a free worker: the policy must
        # have proposed — and the guard rail applied — a scale-down.
        assert "sustained underload" in out
        applied = re.search(r"(\d+) actuations applied", out)
        assert applied is not None and int(applied.group(1)) >= 1


class TestServeWorkers:
    """``--workers`` edges: below-1 counts rejected by name, and a
    1-worker cluster serves the same bits as the in-process service."""

    def test_workers_zero_rejected(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "--workers" in err and ">= 1" in err

    def test_workers_negative_rejected(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--workers", "-3"]) == 2
        err = capsys.readouterr().err
        assert "--workers" in err and ">= 1" in err

    def test_workers_one_serves_via_cluster(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "4", "--workers", "1",
             "--batch-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 worker processes" in out
        assert "oracle agreement: ok" in out

    def test_workers_one_bit_identical_to_in_process(self, model_file):
        """The cluster transport must not change a single decrypted bit:
        a 1-process pool and the threaded service agree query for query."""
        import numpy as np

        from repro.serve import ClusterService, CopseService

        _, forest = model_file
        rng = np.random.default_rng(99)
        queries = [
            [int(v) for v in rng.integers(0, 256, forest.n_features)]
            for _ in range(5)
        ]
        with CopseService(threads=1) as service:
            service.register_model("m", forest, precision=8,
                                   max_batch_size=4)
            in_process = [
                r.bitvector
                for r in service.classify_many("m", queries)
            ]
        with ClusterService(workers=1) as service:
            service.register_model("m", forest, precision=8,
                                   max_batch_size=4)
            clustered = [
                r.bitvector
                for r in service.classify_many("m", queries)
            ]
        assert clustered == in_process

    def test_autoscale_flag_validation(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--autoscale", "--workers-min", "0"]
        ) == 2
        assert "--workers-min" in capsys.readouterr().err
        assert main(
            ["serve", path, "--autoscale", "--workers-min", "4",
             "--workers-max", "2"]
        ) == 2
        assert "--workers-max" in capsys.readouterr().err
        assert main(
            ["serve", path, "--autoscale", "--control-interval", "0"]
        ) == 2
        assert "--control-interval" in capsys.readouterr().err

    def test_autoscale_prints_decision_log(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "4", "--autoscale",
             "--workers-max", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "control plane:" in out
        assert "oracle agreement: ok" in out


class TestBackendFlag:
    """``--backend`` rides the shared parent parser on every inference
    command (classify / batch-classify / serve / bench)."""

    def test_classify_vector_backend(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "33,99", "--backend", "vector"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend: vector" in out
        assert "oracle agreement: ok" in out

    def test_classify_plaintext_backend(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "33,99",
             "--backend", "plaintext"]
        ) == 0
        assert "backend: plaintext" in capsys.readouterr().out

    def test_batch_classify_vector_backend(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["batch-classify", path, "--features", "33,99;0,255",
             "--backend", "vector", "--threads", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "fhe backends        : cli=vector" in out
        assert "MISMATCH" not in out

    def test_serve_vector_backend(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "4", "--threads", "1",
             "--backend", "vector"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend vector" in out  # registered.describe()
        assert "oracle agreement: ok" in out

    def test_bench_backend_speedup(self, capsys):
        assert main(
            ["bench", "backend-speedup", "--workloads", "width55",
             "--queries", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Backend speedup" in out
        assert "vector" in out
        assert "MISMATCH" not in out

    def test_bench_backend_forwarded_and_restored(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert main(
            ["bench", "table2", "--workloads", "width55",
             "--backend", "vector"]
        ) == 0
        assert "Table 2" in capsys.readouterr().out
        # The process default is restored after the command returns.
        assert "REPRO_BACKEND" not in os.environ

    def test_unknown_backend_rejected(self, model_file):
        path, _ = model_file
        with pytest.raises(SystemExit):
            main(["classify", path, "--features", "1,2",
                  "--backend", "helib"])

    def test_seed_scoped_to_query_generating_commands(self, model_file,
                                                      capsys):
        path, _ = model_file
        # serve generates synthetic queries and accepts --seed ...
        assert main(
            ["serve", path, "--queries", "2", "--threads", "1",
             "--seed", "7"]
        ) == 0
        capsys.readouterr()
        # ... classify takes explicit features, so --seed is rejected
        # rather than silently ignored.
        with pytest.raises(SystemExit):
            main(["classify", path, "--features", "33,99", "--seed", "7"])


class TestTrace:
    def test_trace_tape_report(self, model_file, capsys):
        path, _ = model_file
        assert main(["trace", "tape", path, "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "tape profile" in out
        assert "profiled runs: 1" in out
        assert "opcode" in out and "op breakdown" in out
        assert "range" in out

    def test_trace_tape_json_record(self, model_file, tmp_path, capsys):
        import json

        path, _ = model_file
        out_path = tmp_path / "profile.json"
        assert main(
            ["trace", "tape", path, "--batch-size", "4",
             "--json", str(out_path)]
        ) == 0
        record = json.loads(out_path.read_text())
        assert record["runs"] == 1
        assert record["samples"] > 0
        assert record["op_totals"]
        assert record["model"] == path

    def test_trace_tape_rejects_bad_batch_size(self, model_file, capsys):
        path, _ = model_file
        assert main(["trace", "tape", path, "--batch-size", "0"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_trace_sim_chrome_export(self, model_file, tmp_path, capsys):
        import json

        path, _ = model_file
        out_path = tmp_path / "trace.json"
        assert main(
            ["trace", "sim", path, "--queries", "40",
             "-o", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated 40 submissions" in out
        doc = json.loads(out_path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "b" for e in doc["traceEvents"])

    def test_trace_sim_jsonl_export(self, model_file, tmp_path, capsys):
        import json

        path, _ = model_file
        out_path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "sim", path, "--queries", "40",
             "--format", "jsonl", "-o", str(out_path)]
        ) == 0
        lines = out_path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert {"span", "name", "track", "t0", "t1"} <= set(first)

    def test_trace_sim_deterministic_per_seed(self, model_file, tmp_path,
                                              capsys):
        path, _ = model_file
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out_path in (a, b):
            assert main(
                ["trace", "sim", path, "--queries", "40",
                 "--seed", "99", "-o", str(out_path)]
            ) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_trace_requires_kind(self, model_file):
        path, _ = model_file
        with pytest.raises(SystemExit):
            main(["trace", path])


class TestMetricsCommand:
    def test_serve_stats_interval_emits_snapshots(self, model_file,
                                                  capsys):
        import json

        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "4", "--threads", "1",
             "--stats-interval", "2"]
        ) == 0
        out = capsys.readouterr().out
        snapshots = [
            json.loads(line) for line in out.splitlines()
            if line.startswith("{")
        ]
        # One line per 2 submissions plus the post-flush snapshot.
        assert len(snapshots) == 3
        for snap in snapshots:
            assert {"counters", "gauges", "histograms"} <= set(snap)
        final = snapshots[-1]
        assert final["counters"]["sched_completed"] == 4.0

    def test_serve_rejects_bad_stats_interval(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--stats-interval", "0"]) == 2
        assert "--stats-interval" in capsys.readouterr().err

    def test_metrics_pretty_prints_snapshot(self, model_file, tmp_path,
                                            capsys):
        path, _ = model_file
        assert main(
            ["serve", path, "--queries", "2", "--threads", "1",
             "--stats-interval", "2"]
        ) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("{")]
        snap_file = tmp_path / "snap.jsonl"
        snap_file.write_text("\n".join(lines) + "\n")
        assert main(["metrics", str(snap_file)]) == 0
        pretty = capsys.readouterr().out
        assert "metrics snapshot" in pretty
        assert "counters:" in pretty
        assert "sched_submitted" in pretty
        assert "histograms:" in pretty

    def test_metrics_rejects_non_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json\n")
        assert main(["metrics", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_metrics_rejects_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["metrics", str(empty)]) == 2

    def test_metrics_missing_file(self, capsys):
        assert main(["metrics", "/nonexistent/snap.json"]) == 2


class TestDlqCommand:
    def test_serve_dlq_out_requires_workers(self, model_file, capsys):
        path, _ = model_file
        assert main(["serve", path, "--dlq-out", "dlq.json"]) == 2
        assert "--dlq-out" in capsys.readouterr().err

    def test_serve_dumps_dlq_and_cli_renders_it(self, model_file,
                                                tmp_path, capsys):
        """A clean clustered run writes an (empty) DLQ dump that the
        ``dlq`` command round-trips."""
        path, _ = model_file
        dump = tmp_path / "dlq.json"
        assert main(
            ["serve", path, "--queries", "4", "--workers", "1",
             "--batch-size", "4", "--dlq-out", str(dump)]
        ) == 0
        out = capsys.readouterr().out
        assert "dead-letter queue: 0 entries" in out
        assert "repro dlq" in out
        assert main(["dlq", str(dump)]) == 0
        pretty = capsys.readouterr().out
        assert "0 entries" in pretty
        assert "no query was quarantined" in pretty

    def test_dlq_renders_quarantine_entries(self, tmp_path, capsys):
        import json

        from repro.serve import DeadLetter

        entry = DeadLetter(
            model="toxic", tenant="acme", seq=7, origin_batch=3,
            attempts=2, reason="poison quarantine: crashed 2 workers",
            time=1.25,
        )
        dump = tmp_path / "dlq.json"
        dump.write_text(json.dumps([entry.as_dict()]))
        assert main(["dlq", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "model=toxic" in out and "seq=7" in out
        assert "poison quarantine" in out

    def test_dlq_rejects_non_dump(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a list\"}\n")
        assert main(["dlq", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_dlq_rejects_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["dlq", str(empty)]) == 2

    def test_dlq_missing_file(self, capsys):
        assert main(["dlq", "/nonexistent/dlq.json"]) == 2


class TestBenchChaos:
    def test_chaos_section_all_checks_pass(self, capsys):
        assert main(["bench", "chaos"]) == 0
        out = capsys.readouterr().out
        assert "Chaos: deterministic fault matrix" in out
        assert "replay byte-identical=ok" in out
        assert "FAIL" not in out


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
