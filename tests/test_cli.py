"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.forest.serialize import dumps_forest
from repro.forest.synthetic import random_forest


@pytest.fixture
def model_file(tmp_path):
    forest = random_forest(np.random.default_rng(1), [6, 7], max_depth=4)
    path = tmp_path / "model.txt"
    path.write_text(dumps_forest(forest))
    return str(path), forest


class TestInfo:
    def test_prints_statistics(self, model_file, capsys):
        path, forest = model_file
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert f"b={forest.branching}" in out
        assert "selected parameters" in out
        assert f"K={forest.max_multiplicity}" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/model.txt"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_model(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("this is not a model\n")
        assert main(["info", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestCompile:
    def test_stages_module(self, model_file, tmp_path, capsys):
        path, forest = model_file
        out_path = tmp_path / "staged.py"
        assert main(["compile", path, "-o", str(out_path)]) == 0
        assert out_path.exists()
        source = out_path.read_text()
        assert "Auto-generated" in source
        assert "def classify" in source

        # The staged module actually works.
        from repro.core.codegen import exec_generated_module
        from repro.core.runtime import DataOwner
        from repro.fhe.context import FheContext

        staged = exec_generated_module(source)
        ctx = FheContext()
        keys = ctx.keygen()
        enc = staged["encrypt_model"](ctx, keys.public)
        diane = DataOwner(staged["query_spec"](), keys)
        query = diane.prepare_query(ctx, [33, 99])
        result = diane.decrypt_result(
            ctx, staged["classify"](ctx, enc, query)
        )
        assert result.bitvector == forest.label_bitvector([33, 99])


class TestClassify:
    def test_encrypted_model(self, model_file, capsys):
        path, forest = model_file
        assert main(["classify", path, "--features", "33,99"]) == 0
        out = capsys.readouterr().out
        assert "plurality" in out
        assert "oracle agreement: ok" in out

    def test_plaintext_model(self, model_file, capsys):
        path, _ = model_file
        assert main(
            ["classify", path, "--features", "0,255", "--plaintext-model"]
        ) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_features(self, model_file, capsys):
        path, _ = model_file
        assert main(["classify", path, "--features", "a,b"]) == 2

    def test_out_of_domain_features(self, model_file, capsys):
        path, _ = model_file
        assert main(["classify", path, "--features", "999,0"]) == 1
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_fig6_subset(self, capsys):
        assert main(
            ["bench", "fig6", "--workloads", "width55", "--queries", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "width55" in out

    def test_table6(self, capsys):
        assert main(["bench", "table6"]) == 0
        assert "depth4" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["bench", "table2", "--workloads", "width55"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["bench", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10a" in out and "Figure 10c" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
