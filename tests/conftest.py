"""Shared fixtures, the CI hypothesis profile, and the suite timeout cap.

Besides the model fixtures, this file centralizes two pieces of suite
infrastructure:

* the ``repro-plan-ci`` hypothesis profile (derandomized, scaled by
  ``$REPRO_DIFF_EXAMPLES``) — registered once here so every
  property-based suite shares the same fixed CI case set;
* a suite-wide per-test timeout.  With the ``pytest-timeout`` plugin
  installed (CI does) the ``timeout`` ini option applies; without it, a
  SIGALRM fallback below enforces the same cap, so a hung scheduler
  test can never wedge a local run either way.
"""

from __future__ import annotations

import importlib.util
import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.compiler import CopseCompiler
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf
from repro.forest.synthetic import random_forest
from repro.forest.tree import DecisionTree


# ---------------------------------------------------------------------------
# Hypothesis: the fixed CI profile (registered once, used suite-wide)
# ---------------------------------------------------------------------------

settings.register_profile(
    "repro-plan-ci",
    max_examples=int(os.environ.get("REPRO_DIFF_EXAMPLES", "200")),
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Suite-wide timeout: pytest-timeout when available, SIGALRM fallback
# ---------------------------------------------------------------------------

#: Cap applied when neither pytest.ini's ``timeout`` nor the plugin is
#: in play.  Generous: the slowest legitimate test is a fraction of it.
DEFAULT_TIMEOUT_S = 300.0

_HAVE_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


class SuiteTimeout(Exception):
    """A test exceeded the suite-wide per-test cap (fallback enforcer)."""


if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        seconds = float(
            item.config.inicfg.get("timeout", DEFAULT_TIMEOUT_S)
        )
        if seconds <= 0 or threading.current_thread() is not (
            threading.main_thread()
        ):
            yield
            return

        def on_alarm(signum, frame):
            raise SuiteTimeout(
                f"{item.nodeid} exceeded the suite-wide "
                f"{seconds:.0f}s timeout (install pytest-timeout for "
                f"richer diagnostics)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


def pytest_configure(config):
    """Refuse to run with pytest.ini's timeout silently unenforced.

    ``timeout = 300`` in pytest.ini is only honored by the
    pytest-timeout plugin; a run without the plugin *and* without the
    SIGALRM fallback above (e.g. a platform with no SIGALRM) would
    quietly drop the cap — the exact misconfiguration this guard turns
    into a hard error instead of a hung CI job.
    """
    if config.inicfg.get("timeout") is None:
        return
    if not _HAVE_TIMEOUT_PLUGIN and not hasattr(signal, "SIGALRM"):
        raise pytest.UsageError(
            "pytest.ini sets a timeout, but neither the pytest-timeout "
            "plugin nor the SIGALRM fallback is available on this "
            "platform; install pytest-timeout (the 'test' extra "
            "includes it)"
        )


@pytest.fixture
def params() -> EncryptionParams:
    return EncryptionParams.paper_defaults()


@pytest.fixture
def ctx(params) -> FheContext:
    return FheContext(params)


@pytest.fixture
def keys(ctx):
    return ctx.keygen()


def build_example_tree() -> DecisionTree:
    """A small fixed tree used across tests (in the spirit of Figure 1).

    Structure (decision = feature < threshold; true child listed first)::

        d0: x1 < 120
          d1: x0 < 60
            L0
            d2: x1 < 40 -> L1 / L2
          d3: x0 < 200 -> L1 / L0
    """
    return DecisionTree(
        root=Branch(
            feature=1,
            threshold=120,
            true_child=Branch(
                feature=0,
                threshold=60,
                true_child=Leaf(0),
                false_child=Branch(
                    feature=1,
                    threshold=40,
                    true_child=Leaf(1),
                    false_child=Leaf(2),
                ),
            ),
            false_child=Branch(
                feature=0,
                threshold=200,
                true_child=Leaf(1),
                false_child=Leaf(0),
            ),
        )
    )


@pytest.fixture
def example_tree() -> DecisionTree:
    return build_example_tree()


@pytest.fixture
def example_forest(example_tree) -> DecisionForest:
    second = DecisionTree(
        root=Branch(
            feature=0,
            threshold=100,
            true_child=Leaf(2),
            false_child=Branch(
                feature=1,
                threshold=220,
                true_child=Leaf(0),
                false_child=Leaf(1),
            ),
        )
    )
    return DecisionForest(
        trees=[example_tree, second],
        label_names=["L0", "L1", "L2"],
        n_features=2,
    )


@pytest.fixture
def small_random_forest() -> DecisionForest:
    return random_forest(
        np.random.default_rng(7), branches_per_tree=[7, 8], max_depth=5
    )


@pytest.fixture
def compiled_example(example_forest):
    return CopseCompiler(precision=8).compile(example_forest)


def random_features(rng: np.random.Generator, n: int, precision: int = 8):
    return [int(v) for v in rng.integers(0, 1 << precision, n)]
