"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import CopseCompiler
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf
from repro.forest.synthetic import random_forest
from repro.forest.tree import DecisionTree


@pytest.fixture
def params() -> EncryptionParams:
    return EncryptionParams.paper_defaults()


@pytest.fixture
def ctx(params) -> FheContext:
    return FheContext(params)


@pytest.fixture
def keys(ctx):
    return ctx.keygen()


def build_example_tree() -> DecisionTree:
    """A small fixed tree used across tests (in the spirit of Figure 1).

    Structure (decision = feature < threshold; true child listed first)::

        d0: x1 < 120
          d1: x0 < 60
            L0
            d2: x1 < 40 -> L1 / L2
          d3: x0 < 200 -> L1 / L0
    """
    return DecisionTree(
        root=Branch(
            feature=1,
            threshold=120,
            true_child=Branch(
                feature=0,
                threshold=60,
                true_child=Leaf(0),
                false_child=Branch(
                    feature=1,
                    threshold=40,
                    true_child=Leaf(1),
                    false_child=Leaf(2),
                ),
            ),
            false_child=Branch(
                feature=0,
                threshold=200,
                true_child=Leaf(1),
                false_child=Leaf(0),
            ),
        )
    )


@pytest.fixture
def example_tree() -> DecisionTree:
    return build_example_tree()


@pytest.fixture
def example_forest(example_tree) -> DecisionForest:
    second = DecisionTree(
        root=Branch(
            feature=0,
            threshold=100,
            true_child=Leaf(2),
            false_child=Branch(
                feature=1,
                threshold=220,
                true_child=Leaf(0),
                false_child=Leaf(1),
            ),
        )
    )
    return DecisionForest(
        trees=[example_tree, second],
        label_names=["L0", "L1", "L2"],
        n_features=2,
    )


@pytest.fixture
def small_random_forest() -> DecisionForest:
    return random_forest(
        np.random.default_rng(7), branches_per_tree=[7, 8], max_depth=5
    )


@pytest.fixture
def compiled_example(example_forest):
    return CopseCompiler(precision=8).compile(example_forest)


def random_features(rng: np.random.Generator, n: int, precision: int = 8):
    return [int(v) for v in rng.integers(0, 1 << precision, n)]
