"""Tests for the synthetic datasets and forest validation."""

import numpy as np
import pytest

from repro.errors import TrainingError, ValidationError
from repro.forest.datasets import (
    INCOME_FEATURE_NAMES,
    SOCCER_FEATURE_NAMES,
    dataset_by_name,
    list_datasets,
    make_income_dataset,
    make_soccer_dataset,
)
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf
from repro.forest.train import RandomForestTrainer, accuracy
from repro.forest.tree import DecisionTree
from repro.forest.validate import validate_forest


class TestIncomeDataset:
    def test_shape(self):
        ds = make_income_dataset(n_samples=500)
        assert ds.features.shape == (500, 14)
        assert ds.labels.shape == (500,)
        assert ds.feature_names == INCOME_FEATURE_NAMES
        assert ds.label_names == ("under_50k", "over_50k")

    def test_quantized_domain(self):
        ds = make_income_dataset(n_samples=300, precision=8)
        assert ds.features.min() >= 0
        assert ds.features.max() <= 255

    def test_deterministic(self):
        a = make_income_dataset(n_samples=200, seed=3)
        b = make_income_dataset(n_samples=200, seed=3)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_both_classes_present(self):
        ds = make_income_dataset(n_samples=500)
        assert set(np.unique(ds.labels)) == {0, 1}

    def test_learnable(self):
        ds = make_income_dataset(n_samples=1500)
        forest = RandomForestTrainer(n_trees=5, max_depth=8, seed=0).fit(
            ds.features, ds.labels, ds.label_names
        )
        preds = [forest.classify(row) for row in ds.features[:300]]
        majority = max(np.bincount(ds.labels[:300])) / 300
        assert accuracy(preds, ds.labels[:300]) > majority

    def test_too_small_rejected(self):
        with pytest.raises(TrainingError):
            make_income_dataset(n_samples=5)


class TestSoccerDataset:
    def test_shape(self):
        ds = make_soccer_dataset(n_samples=400)
        assert ds.features.shape == (400, 9)
        assert ds.feature_names == SOCCER_FEATURE_NAMES
        assert ds.label_names == ("home_win", "draw", "away_win")

    def test_three_classes_present(self):
        ds = make_soccer_dataset(n_samples=600)
        assert set(np.unique(ds.labels)) == {0, 1, 2}

    def test_lookup(self):
        assert dataset_by_name("income", n_samples=100).n_features == 14
        assert dataset_by_name("soccer", n_samples=100).n_features == 9
        with pytest.raises(TrainingError):
            dataset_by_name("chess")
        assert list_datasets() == ["income", "soccer"]


class TestValidateForest:
    def test_valid_forest_passes(self, example_forest):
        validate_forest(example_forest, precision=8)

    def test_threshold_beyond_precision_rejected(self, example_forest):
        with pytest.raises(ValidationError, match="does not fit"):
            validate_forest(example_forest, precision=4)

    def test_no_precision_skips_threshold_check(self, example_forest):
        validate_forest(example_forest)  # thresholds up to 220, no p check

    def test_depth_limit(self):
        node = Leaf(0)
        for i in range(70):
            node = Branch(0, 1 + (i % 250), node, Leaf(0))
        deep = DecisionForest(
            trees=[DecisionTree(root=node)],
            label_names=["a", "b"],
            n_features=1,
        )
        with pytest.raises(ValidationError, match="depth"):
            validate_forest(deep, max_depth_limit=64)
        validate_forest(deep, max_depth_limit=128)
