"""Tests for random model generation and the Table 6 suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.forest.synthetic import (
    MICROBENCHMARKS,
    microbenchmark,
    random_forest,
    random_tree,
)


class TestRandomTree:
    def test_exact_branch_count(self):
        rng = np.random.default_rng(0)
        tree = random_tree(rng, 9, max_depth=5, n_features=2, n_labels=3, precision=8)
        assert tree.num_branches == 9
        assert tree.num_leaves == 10

    def test_depth_bound_respected(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            tree = random_tree(rng, 7, 4, 2, 3, 8)
            assert tree.depth <= 4

    def test_exact_depth(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            tree = random_tree(rng, 8, 6, 2, 3, 8, exact_depth=6)
            assert tree.depth == 6

    def test_overfull_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValidationError):
            random_tree(rng, 16, 4, 2, 3, 8)  # depth-4 cap is 15 branches

    def test_zero_branches_rejected(self):
        with pytest.raises(ValidationError):
            random_tree(np.random.default_rng(0), 0, 4, 2, 3, 8)

    def test_impossible_exact_depth_rejected(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValidationError):
            random_tree(rng, 3, 5, 2, 3, 8, exact_depth=4)

    def test_thresholds_fit_precision(self):
        rng = np.random.default_rng(5)
        tree = random_tree(rng, 15, 5, 2, 3, precision=4)
        assert all(1 <= t < 16 for t in tree.thresholds())

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=3, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_generation_property(self, seed, branches, depth):
        if branches > (1 << depth) - 1:
            branches = (1 << depth) - 1
        rng = np.random.default_rng(seed)
        tree = random_tree(rng, branches, depth, 2, 3, 8)
        assert tree.num_branches == branches
        assert tree.num_leaves == branches + 1
        assert 1 <= tree.depth <= depth


class TestRandomForest:
    def test_forest_shape(self):
        forest = random_forest(
            np.random.default_rng(0), [5, 7], max_depth=5
        )
        assert forest.n_trees == 2
        assert forest.branching == 12
        assert forest.max_depth == 5

    def test_max_depth_pinned(self):
        for seed in range(10):
            forest = random_forest(
                np.random.default_rng(seed), [7, 8], max_depth=6
            )
            assert forest.max_depth == 6

    def test_unreachable_depth_rejected(self):
        with pytest.raises(ValidationError):
            random_forest(np.random.default_rng(0), [2, 2], max_depth=5)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            random_forest(np.random.default_rng(0), [], max_depth=3)


class TestMicrobenchmarks:
    def test_suite_matches_table6(self):
        expected = {
            "depth4": (4, 8, 2, 15),
            "depth5": (5, 8, 2, 15),
            "depth6": (6, 8, 2, 15),
            "width55": (5, 8, 2, 10),
            "width78": (5, 8, 2, 15),
            "width677": (5, 8, 3, 20),
            "prec8": (5, 8, 2, 15),
            "prec16": (5, 16, 2, 15),
        }
        assert len(MICROBENCHMARKS) == 8
        for spec in MICROBENCHMARKS:
            depth, precision, trees, branches = expected[spec.name]
            assert spec.max_depth == depth
            assert spec.precision == precision
            assert spec.n_trees == trees
            assert spec.total_branches == branches

    def test_generated_models_match_spec(self):
        for spec in MICROBENCHMARKS:
            forest = spec.build()
            assert forest.branching == spec.total_branches
            assert forest.max_depth == spec.max_depth
            assert forest.n_trees == spec.n_trees
            assert forest.n_features == 2
            assert forest.n_labels == 3

    def test_build_is_deterministic(self):
        from repro.forest.serialize import dumps_forest

        spec = microbenchmark("width78")
        assert dumps_forest(spec.build()) == dumps_forest(spec.build())

    def test_lookup_unknown(self):
        with pytest.raises(ValidationError):
            microbenchmark("depth99")
