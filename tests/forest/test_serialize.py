"""Tests for the Section 5 text serialization format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SerializationError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf
from repro.forest.serialize import dumps_forest, loads_forest
from repro.forest.synthetic import random_forest
from repro.forest.tree import DecisionTree


def _single_branch_forest():
    tree = DecisionTree(root=Branch(0, 130, Leaf(1), Leaf(0)))
    return DecisionForest(
        trees=[tree], label_names=["reject", "accept"], n_features=2
    )


class TestDumps:
    def test_header_lines(self):
        text = dumps_forest(_single_branch_forest())
        lines = text.strip().splitlines()
        assert lines[0] == "labels: reject accept"
        assert lines[1] == "features: 2"
        assert lines[2] == "b 0 130 l 1 l 0"

    def test_one_line_per_tree(self, example_forest):
        text = dumps_forest(example_forest)
        assert len(text.strip().splitlines()) == 2 + example_forest.n_trees


class TestLoads:
    def test_documented_example(self):
        text = "labels: reject accept\nfeatures: 2\nb 0 130 l 1 l 0\n"
        forest = loads_forest(text)
        assert forest.label_names == ["reject", "accept"]
        assert forest.n_features == 2
        assert forest.classify([100, 0]) == 1
        assert forest.classify([200, 0]) == 0

    def test_blank_lines_ignored(self):
        text = "labels: a b\n\nfeatures: 1\n\nb 0 5 l 0 l 1\n\n"
        assert loads_forest(text).n_trees == 1

    def test_missing_labels_line(self):
        with pytest.raises(SerializationError):
            loads_forest("features: 1\nb 0 5 l 0 l 1\nl 0\n")

    def test_missing_features_line(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a b\nb 0 5 l 0 l 1\nx\n")

    def test_bad_feature_count(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a\nfeatures: zero\nl 0\n")
        with pytest.raises(SerializationError):
            loads_forest("labels: a\nfeatures: -1\nl 0\n")

    def test_truncated_tree(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a b\nfeatures: 1\nb 0 5 l 0\n")

    def test_trailing_tokens(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a b\nfeatures: 1\nl 0 l 1\n")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a b\nfeatures: 1\nz 0\n")

    def test_non_integer_field(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a b\nfeatures: 1\nb 0 x l 0 l 1\n")

    def test_too_few_lines(self):
        with pytest.raises(SerializationError):
            loads_forest("labels: a\n")


class TestRoundtrip:
    def test_example_forest(self, example_forest):
        parsed = loads_forest(dumps_forest(example_forest))
        assert parsed.label_names == example_forest.label_names
        assert parsed.n_features == example_forest.n_features
        rng = np.random.default_rng(0)
        for _ in range(40):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            assert parsed.classify_per_tree(feats) == (
                example_forest.classify_per_tree(feats)
            )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_forest_roundtrip(self, seed):
        forest = random_forest(
            np.random.default_rng(seed),
            branches_per_tree=[5, 7],
            max_depth=5,
        )
        parsed = loads_forest(dumps_forest(forest))
        assert dumps_forest(parsed) == dumps_forest(forest)
        rng = np.random.default_rng(seed + 1)
        feats = [int(v) for v in rng.integers(0, 256, 2)]
        assert parsed.classify_per_tree(feats) == forest.classify_per_tree(feats)
