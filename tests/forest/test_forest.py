"""Tests for forest-level statistics and inference."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.forest.forest import DecisionForest
from repro.forest.node import Branch, Leaf
from repro.forest.synthetic import random_forest
from repro.forest.tree import DecisionTree


class TestConstruction:
    def test_empty_forest_rejected(self):
        with pytest.raises(ValidationError):
            DecisionForest(trees=[], label_names=["a"], n_features=1)

    def test_no_labels_rejected(self, example_tree):
        with pytest.raises(ValidationError):
            DecisionForest(trees=[example_tree], label_names=[], n_features=2)

    def test_bad_arity_rejected(self, example_tree):
        with pytest.raises(ValidationError):
            DecisionForest(
                trees=[example_tree], label_names=["a", "b", "c"], n_features=0
            )

    def test_tree_validated_against_forest(self, example_tree):
        with pytest.raises(ValidationError):
            DecisionForest(
                trees=[example_tree], label_names=["a", "b"], n_features=2
            )

    def test_feature_name_count_checked(self, example_tree):
        with pytest.raises(ValidationError):
            DecisionForest(
                trees=[example_tree],
                label_names=["a", "b", "c"],
                n_features=2,
                feature_names=["only_one"],
            )


class TestStatistics:
    def test_multiplicities(self, example_forest):
        kappa = example_forest.multiplicities()
        assert kappa == {0: 3, 1: 3}

    def test_derived_stats(self, example_forest):
        assert example_forest.max_multiplicity == 3
        assert example_forest.branching == 6
        assert example_forest.quantized_branching == 6
        assert example_forest.num_leaves == 8
        assert example_forest.max_depth == 3
        assert example_forest.n_trees == 2

    def test_unused_feature_has_zero_multiplicity(self):
        tree = DecisionTree(root=Branch(0, 5, Leaf(0), Leaf(1)))
        forest = DecisionForest(
            trees=[tree], label_names=["a", "b"], n_features=3
        )
        assert forest.multiplicities() == {0: 1, 1: 0, 2: 0}
        assert forest.quantized_branching == 3  # K=1 over 3 features

    def test_enumerations_concatenate(self, example_forest):
        assert len(example_forest.all_branches()) == 6
        assert len(example_forest.all_leaves()) == 8

    def test_describe(self, example_forest):
        text = example_forest.describe()
        assert "b=6" in text and "K=3" in text


class TestInference:
    def test_per_tree_labels(self, example_forest):
        labels = example_forest.classify_per_tree([10, 10])
        assert labels == [0, 2]

    def test_plurality(self, example_forest):
        # [100, 30]: tree1 -> L1, tree2 -> 2 (x>=100 false -> y<220 true -> 0)
        votes = example_forest.classify_per_tree([100, 30])
        assert example_forest.classify([100, 30]) in votes

    def test_plurality_tie_breaks_low(self):
        t1 = DecisionTree(root=Branch(0, 10, Leaf(1), Leaf(1)))
        t2 = DecisionTree(root=Branch(0, 10, Leaf(0), Leaf(0)))
        forest = DecisionForest(
            trees=[t1, t2], label_names=["a", "b"], n_features=1
        )
        assert forest.classify([5]) == 0

    def test_wrong_arity_rejected(self, example_forest):
        with pytest.raises(ValidationError):
            example_forest.classify_per_tree([1])

    def test_label_bitvector_is_n_hot(self, example_forest):
        rng = np.random.default_rng(0)
        for _ in range(25):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            bits = example_forest.label_bitvector(feats)
            assert len(bits) == example_forest.num_leaves
            assert sum(bits) == example_forest.n_trees

    def test_label_bitvector_consistent_with_per_tree(self, example_forest):
        rng = np.random.default_rng(1)
        codebook = [
            leaf.label_index for leaf in example_forest.all_leaves()
        ]
        for _ in range(25):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            bits = example_forest.label_bitvector(feats)
            chosen = [codebook[i] for i, b in enumerate(bits) if b]
            assert chosen == example_forest.classify_per_tree(feats)

    def test_random_forest_bitvector_property(self):
        forest = random_forest(
            np.random.default_rng(5), [6, 7, 7], max_depth=5
        )
        rng = np.random.default_rng(6)
        codebook = [leaf.label_index for leaf in forest.all_leaves()]
        for _ in range(30):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            bits = forest.label_bitvector(feats)
            assert sum(bits) == forest.n_trees
            chosen = [codebook[i] for i, b in enumerate(bits) if b]
            assert chosen == forest.classify_per_tree(feats)
