"""Tests for the CART / random-forest trainer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.forest.train import (
    CartTrainer,
    RandomForestTrainer,
    accuracy,
    gini_impurity,
    train_test_split,
)


def _separable_dataset(n=400, seed=0):
    """Two classes cleanly split on feature 0 at value 128."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 256, size=(n, 3))
    y = (X[:, 0] >= 128).astype(np.int64)
    return X, y


class TestGini:
    def test_pure_is_zero(self):
        assert gini_impurity(np.array([10, 0])) == 0.0

    def test_uniform_is_half(self):
        assert gini_impurity(np.array([5, 5])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert gini_impurity(np.array([0, 0])) == 0.0

    def test_three_way(self):
        assert gini_impurity(np.array([1, 1, 1])) == pytest.approx(2 / 3)


class TestCart:
    def test_learns_separable_split(self):
        X, y = _separable_dataset()
        tree = CartTrainer(max_depth=3).fit(X, y, n_labels=2)
        assert tree.classify([0, 0, 0]) == 0
        assert tree.classify([255, 0, 0]) == 1
        # One split suffices; the useless-branch pruning keeps it small.
        assert tree.num_branches <= 3

    def test_threshold_semantics_consistent(self):
        # Training uses x < t like inference; check the split boundary.
        X = np.array([[10], [20]])
        y = np.array([0, 1])
        tree = CartTrainer(max_depth=1).fit(X, y, n_labels=2)
        assert tree.classify([10]) == 0
        assert tree.classify([20]) == 1

    def test_max_depth_respected(self):
        X, y = _separable_dataset(seed=1)
        y = (X.sum(axis=1) % 3).astype(np.int64)  # hard target -> deep tree
        tree = CartTrainer(max_depth=4).fit(X, y, n_labels=3)
        assert tree.depth <= 4

    def test_min_samples_leaf_respected(self):
        X, y = _separable_dataset(seed=2)
        big = CartTrainer(max_depth=8, min_samples_leaf=1).fit(X, y, 2)
        small = CartTrainer(max_depth=8, min_samples_leaf=50).fit(X, y, 2)
        assert small.num_branches <= big.num_branches

    def test_pure_node_is_leaf(self):
        X = np.array([[1], [2], [3]])
        y = np.array([1, 1, 1])
        tree = CartTrainer().fit(X, y, n_labels=2)
        assert tree.num_branches == 0
        assert tree.classify([2]) == 1

    def test_empty_dataset_rejected(self):
        with pytest.raises(TrainingError):
            CartTrainer().fit(np.zeros((0, 2)), np.zeros(0, dtype=int), 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            CartTrainer().fit(np.zeros((3, 2)), np.zeros(5, dtype=int), 2)

    def test_negative_features_rejected(self):
        with pytest.raises(TrainingError):
            CartTrainer().fit(np.array([[-1]]), np.array([0]), 2)


class TestRandomForest:
    def test_fit_produces_requested_trees(self):
        X, y = _separable_dataset()
        forest = RandomForestTrainer(n_trees=4, seed=1).fit(
            X, y, label_names=["lo", "hi"]
        )
        assert forest.n_trees == 4
        assert forest.label_names == ["lo", "hi"]
        assert forest.n_features == 3

    def test_learns_separable_target(self):
        X, y = _separable_dataset()
        forest = RandomForestTrainer(n_trees=5, seed=2).fit(
            X, y, label_names=["lo", "hi"]
        )
        preds = [forest.classify(row) for row in X[:100]]
        assert accuracy(preds, y[:100]) > 0.9

    def test_deterministic_with_seed(self):
        from repro.forest.serialize import dumps_forest

        X, y = _separable_dataset()
        a = RandomForestTrainer(n_trees=3, seed=9).fit(X, y, ["a", "b"])
        b = RandomForestTrainer(n_trees=3, seed=9).fit(X, y, ["a", "b"])
        assert dumps_forest(a) == dumps_forest(b)

    def test_bad_labels_rejected(self):
        X, y = _separable_dataset()
        with pytest.raises(TrainingError):
            RandomForestTrainer().fit(X, y + 5, label_names=["a", "b"])

    def test_single_label_rejected(self):
        X, y = _separable_dataset()
        with pytest.raises(TrainingError):
            RandomForestTrainer().fit(X, np.zeros_like(y), label_names=["a"])

    def test_max_features_spreads_usage(self):
        X, y = _separable_dataset(n=600, seed=3)
        focused = RandomForestTrainer(
            n_trees=5, seed=4, max_features=3
        ).fit(X, y, ["a", "b"])
        spread = RandomForestTrainer(
            n_trees=5, seed=4, max_features=1
        ).fit(X, y, ["a", "b"])
        # Random single-feature selection lowers the max multiplicity
        # relative to always picking the informative feature.
        assert (
            spread.max_multiplicity / max(1, spread.branching)
            <= focused.max_multiplicity / max(1, focused.branching)
        )


class TestHelpers:
    def test_train_test_split_shapes(self):
        X, y = _separable_dataset(n=100)
        Xtr, ytr, Xte, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert Xtr.shape[0] == 75 and Xte.shape[0] == 25
        assert ytr.shape[0] == 75 and yte.shape[0] == 25

    def test_train_test_split_bad_fraction(self):
        X, y = _separable_dataset(n=10)
        with pytest.raises(TrainingError):
            train_test_split(X, y, test_fraction=1.5)

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 0.0
        with pytest.raises(TrainingError):
            accuracy([1], [1, 2])
