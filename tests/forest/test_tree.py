"""Tests for tree nodes and single-tree behaviour."""

import pytest

from repro.errors import ValidationError
from repro.forest.node import Branch, Leaf
from repro.forest.tree import DecisionTree

from tests.conftest import build_example_tree


class TestNodes:
    def test_leaf_level_zero(self):
        assert Leaf(0).level == 0
        assert Leaf(0).is_leaf

    def test_branch_level(self):
        b = Branch(0, 10, Leaf(0), Leaf(1))
        assert b.level == 1
        assert not b.is_leaf

    def test_nested_level(self):
        inner = Branch(0, 10, Leaf(0), Leaf(1))
        outer = Branch(1, 20, inner, Leaf(2))
        assert outer.level == 2

    def test_decide_semantics(self):
        b = Branch(0, 100, Leaf(1), Leaf(0))
        assert b.decide([99]) is True  # feature < threshold
        assert b.decide([100]) is False
        assert b.decide([101]) is False

    def test_negative_indices_rejected(self):
        with pytest.raises(ValidationError):
            Leaf(-1)
        with pytest.raises(ValidationError):
            Branch(-1, 10, Leaf(0), Leaf(1))
        with pytest.raises(ValidationError):
            Branch(0, -5, Leaf(0), Leaf(1))


class TestClassification:
    def test_example_tree_paths(self, example_tree):
        # d0 true (y < 120), d1 true (x < 60) -> L0
        assert example_tree.classify([10, 10]) == 0
        # d0 true, d1 false, d2 true (y < 40) -> L1
        assert example_tree.classify([100, 30]) == 1
        # d0 true, d1 false, d2 false -> L2
        assert example_tree.classify([100, 100]) == 2
        # d0 false, d3 true (x < 200) -> L1
        assert example_tree.classify([100, 200]) == 1
        # d0 false, d3 false -> L0
        assert example_tree.classify([220, 200]) == 0

    def test_decision_path(self, example_tree):
        assert example_tree.decision_path([10, 10]) == [True, True]
        assert example_tree.decision_path([100, 100]) == [True, False, False]
        assert example_tree.decision_path([220, 200]) == [False, False]


class TestTraversal:
    def test_preorder_order(self, example_tree):
        kinds = [
            ("B", n.feature) if isinstance(n, Branch) else ("L", n.label_index)
            for n in example_tree.preorder()
        ]
        assert kinds == [
            ("B", 1),  # d0
            ("B", 0),  # d1
            ("L", 0),
            ("B", 1),  # d2
            ("L", 1),
            ("L", 2),
            ("B", 0),  # d3
            ("L", 1),
            ("L", 0),
        ]

    def test_counts(self, example_tree):
        assert example_tree.num_branches == 4
        assert example_tree.num_leaves == 5
        assert len(example_tree.branches()) == 4
        assert len(example_tree.leaves()) == 5

    def test_depth_and_levels(self, example_tree):
        assert example_tree.depth == 3
        branches = example_tree.branches()
        levels = [example_tree.node_level(b) for b in branches]
        assert levels == [3, 2, 1, 1]

    def test_feature_and_threshold_vectors(self, example_tree):
        assert example_tree.feature_indices() == [1, 0, 1, 0]
        assert example_tree.thresholds() == [120, 60, 40, 200]


class TestDownstream:
    def test_root_downstream_is_everything(self, example_tree):
        root = example_tree.branches()[0]
        downstream = example_tree.downstream_labels(root)
        assert sorted(p for p, _ in downstream) == [0, 1, 2, 3, 4]

    def test_sides(self, example_tree):
        root = example_tree.branches()[0]
        sides = dict(example_tree.downstream_labels(root))
        # Leaves 0,1,2 sit under the true child; 3,4 under the false child.
        assert sides[0] and sides[1] and sides[2]
        assert not sides[3] and not sides[4]

    def test_width_matches_downstream(self, example_tree):
        d1 = example_tree.branches()[1]
        assert len(example_tree.downstream_labels(d1)) == 3


class TestValidate:
    def test_valid(self, example_tree):
        example_tree.validate(n_features=2, n_labels=3)

    def test_feature_out_of_range(self, example_tree):
        with pytest.raises(ValidationError):
            example_tree.validate(n_features=1, n_labels=3)

    def test_label_out_of_range(self, example_tree):
        with pytest.raises(ValidationError):
            example_tree.validate(n_features=2, n_labels=2)


def test_build_example_tree_is_fresh():
    a = build_example_tree()
    b = build_example_tree()
    assert a.root is not b.root
