"""Tests for the Aloufi et al. polynomial baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.polynomial import (
    compile_polynomial,
    label_bit_width,
)
from repro.baseline.runtime import (
    BaselineDataOwner,
    BaselineModelOwner,
    BaselineServer,
    baseline_inference,
)
from repro.core.complexity import baseline_comparison
from repro.core.seccomp import VARIANT_ALOUFI, VARIANT_OPTIMIZED
from repro.errors import RuntimeProtocolError
from repro.fhe.context import FheContext
from repro.fhe.tracker import OpKind
from repro.forest.synthetic import MICROBENCHMARKS, random_forest


class TestPolynomialCompilation:
    def test_label_bit_width(self):
        assert label_bit_width(2) == 1
        assert label_bit_width(3) == 2
        assert label_bit_width(4) == 2
        assert label_bit_width(5) == 3

    def test_structure(self, example_forest):
        poly = compile_polynomial(example_forest, precision=8)
        assert poly.branching == example_forest.branching
        assert len(poly.trees) == example_forest.n_trees
        assert poly.label_bits == 2  # three labels
        total_terms = sum(tree.num_leaves for tree in poly.trees)
        assert total_terms == example_forest.num_leaves

    def test_branch_vectors_preorder(self, example_forest):
        poly = compile_polynomial(example_forest, precision=8)
        expected_features = []
        expected_thresholds = []
        for tree in example_forest.trees:
            expected_features.extend(tree.feature_indices())
            expected_thresholds.extend(tree.thresholds())
        assert list(poly.branch_features) == expected_features
        assert list(poly.branch_thresholds) == expected_thresholds

    def test_paths_are_disjoint_and_cover(self, example_forest):
        poly = compile_polynomial(example_forest, precision=8)
        rng = np.random.default_rng(0)
        for _ in range(20):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            decisions = [
                feats[poly.branch_features[i]] < poly.branch_thresholds[i]
                for i in range(poly.branching)
            ]
            labels = [tree.evaluate_plain(decisions) for tree in poly.trees]
            assert labels == example_forest.classify_per_tree(feats)

    def test_max_path_length(self, example_forest):
        poly = compile_polynomial(example_forest, precision=8)
        assert poly.max_path_length == example_forest.max_depth


class TestSecureBaseline:
    @pytest.mark.parametrize("variant", [VARIANT_ALOUFI, VARIANT_OPTIMIZED])
    @pytest.mark.parametrize("encrypted_model", [True, False])
    def test_oracle_agreement(self, example_forest, variant, encrypted_model):
        rng = np.random.default_rng(1)
        for _ in range(6):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            out = baseline_inference(
                example_forest,
                feats,
                encrypted_model=encrypted_model,
                seccomp_variant=variant,
            )
            assert out.result.labels == example_forest.classify_per_tree(feats)

    @pytest.mark.parametrize(
        "spec", MICROBENCHMARKS[:4], ids=lambda s: s.name
    )
    def test_microbenchmarks(self, spec):
        forest = spec.build()
        rng = np.random.default_rng(2)
        limit = 1 << spec.precision
        for _ in range(2):
            feats = [int(v) for v in rng.integers(0, limit, 2)]
            out = baseline_inference(forest, feats, precision=spec.precision)
            assert out.result.labels == forest.classify_per_tree(feats)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_models(self, seed):
        forest = random_forest(
            np.random.default_rng(seed), [5, 6], max_depth=4, n_features=3
        )
        feats = [
            int(v) for v in np.random.default_rng(seed + 1).integers(0, 256, 3)
        ]
        out = baseline_inference(forest, feats)
        assert out.result.labels == forest.classify_per_tree(feats)

    def test_plurality(self, example_forest):
        out = baseline_inference(example_forest, [10, 10])
        assert out.result.plurality() in out.result.labels


class TestBaselineCosts:
    def test_comparison_counts_scale_with_branches(self, example_forest):
        out = baseline_inference(example_forest, [1, 2])
        tracker = out.tracker
        measured_mult = tracker.phase_stats("comparison").counts.get(
            OpKind.MULTIPLY, 0
        )
        predicted = baseline_comparison(8, example_forest.branching)
        assert measured_mult == predicted["multiply"]

    def test_model_encryption_is_per_branch(self, example_forest):
        out = baseline_inference(example_forest, [1, 2])
        encrypts = out.tracker.phase_stats("model_encrypt").counts[
            OpKind.ENCRYPT
        ]
        # b branches x p bit planes: far more than COPSE's p.
        assert encrypts == example_forest.branching * 8

    def test_no_rotations(self, example_forest):
        """The baseline never rotates: its only SIMD axis is label bits."""
        out = baseline_inference(example_forest, [1, 2])
        assert out.tracker.count(OpKind.ROTATE) == 0

    def test_depth_logarithmic_in_path_length(self, example_forest):
        out = baseline_inference(example_forest, [1, 2])
        from repro.core.seccomp import seccomp_depth

        depth = out.tracker.multiplicative_depth()
        # SecComp depth plus a log-depth path product and label select.
        assert depth <= seccomp_depth(8) + 4


class TestBaselineProtocolErrors:
    def test_arity_checked(self, example_forest):
        with pytest.raises(RuntimeProtocolError):
            baseline_inference(example_forest, [1])

    def test_domain_checked(self, example_forest):
        with pytest.raises(RuntimeProtocolError):
            baseline_inference(example_forest, [300, 0])

    def test_query_feature_count_checked(self, example_forest):
        poly = compile_polynomial(example_forest, precision=8)
        ctx = FheContext()
        keys = ctx.keygen()
        diane = BaselineDataOwner(poly, keys)
        query = diane.prepare_query(ctx, [1, 2])
        query.feature_planes = query.feature_planes[:1]
        enc_model = BaselineModelOwner(poly).encrypt_model(ctx, keys.public)
        with pytest.raises(RuntimeProtocolError):
            BaselineServer(ctx).classify(enc_model, query)
