"""Tests for the Wu et al. OT-based protocol and the AHE substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DomainError, KeyMismatchError, RuntimeProtocolError
from repro.baseline.wu_ot import (
    CLIENT,
    SERVER,
    WuClient,
    WuServer,
    one_of_n_transfer,
    pad_and_permute,
    wu_inference,
)
from repro.core.threeparty import Transcript
from repro.fhe.ahe import AheContext
from repro.fhe.tracker import OpKind
from repro.forest.synthetic import MICROBENCHMARKS, random_forest


class TestAheContext:
    @pytest.fixture
    def ahe(self):
        return AheContext()

    def test_roundtrip(self, ahe):
        keys = ahe.keygen()
        ct = ahe.encrypt(1234, keys.public)
        assert ahe.decrypt(ct, keys.secret) == 1234

    def test_wrong_key_rejected(self, ahe):
        keys = ahe.keygen()
        other = ahe.keygen()
        ct = ahe.encrypt(5, keys.public)
        with pytest.raises(KeyMismatchError):
            ahe.decrypt(ct, other.secret)

    def test_additive_homomorphism(self, ahe):
        keys = ahe.keygen()
        a = ahe.encrypt(100, keys.public)
        b = ahe.encrypt(23, keys.public)
        assert ahe.decrypt(ahe.add(a, b), keys.secret) == 123
        assert ahe.decrypt(ahe.add_plain(a, -40), keys.secret) == 60
        assert ahe.decrypt(ahe.mul_plain(a, 3), keys.secret) == 300

    def test_signed_decryption(self, ahe):
        keys = ahe.keygen()
        ct = ahe.encrypt(10, keys.public)
        blinded = ahe.mul_plain(ahe.add_plain(ct, -25), 7)
        assert ahe.decrypt_signed(blinded, keys.secret) == 7 * (10 - 25)

    def test_cross_key_add_rejected(self, ahe):
        a = ahe.encrypt(1, ahe.keygen().public)
        b = ahe.encrypt(1, ahe.keygen().public)
        with pytest.raises(KeyMismatchError):
            ahe.add(a, b)

    def test_ops_recorded(self, ahe):
        keys = ahe.keygen()
        a = ahe.encrypt(1, keys.public)
        ahe.mul_plain(ahe.add_plain(a, 1), 2)
        assert ahe.tracker.count(OpKind.AHE_ENCRYPT) == 1
        assert ahe.tracker.count(OpKind.AHE_ADD) == 1
        assert ahe.tracker.count(OpKind.AHE_MUL_PLAIN) == 1

    def test_tiny_modulus_rejected(self):
        with pytest.raises(DomainError):
            AheContext(modulus=2)


class TestPadding:
    def test_complete_shape(self, example_tree):
        padded = pad_and_permute(
            example_tree.root, example_tree.depth, np.random.default_rng(0)
        )
        assert padded.depth == 3
        assert padded.num_nodes == 7
        assert padded.num_leaves == 8

    def test_padded_walk_matches_tree(self, example_tree):
        """Walking the padded tree in plaintext reproduces the original
        classification for every input — flips, dummies and all."""
        rng = np.random.default_rng(1)
        for trial in range(10):
            padded = pad_and_permute(
                example_tree.root, example_tree.depth,
                np.random.default_rng(trial),
            )
            for _ in range(20):
                feats = [int(v) for v in rng.integers(0, 256, 2)]
                bits = []
                for i in range(1, padded.num_nodes + 1):
                    x = feats[padded.features[i]]
                    t = padded.thresholds[i]
                    if padded.flips[i]:
                        bits.append(x >= t)
                    else:
                        bits.append(x < t)
                position = WuClient.leaf_position(padded.depth, bits)
                assert padded.labels[position] == example_tree.classify(feats)

    def test_depth_too_small_rejected(self, example_tree):
        with pytest.raises(Exception):
            pad_and_permute(example_tree.root, 1, np.random.default_rng(0))


class TestObliviousTransfer:
    def test_returns_chosen_item(self):
        transcript = Transcript()
        assert one_of_n_transfer(transcript, [10, 20, 30], 1) == 20

    def test_transcript_reveals_nothing_about_choice(self):
        a, b = Transcript(), Transcript()
        one_of_n_transfer(a, [10, 20, 30], 0)
        one_of_n_transfer(b, [10, 20, 30], 2)
        assert a.messages == b.messages  # sender's view is identical

    def test_out_of_range_choice(self):
        with pytest.raises(RuntimeProtocolError):
            one_of_n_transfer(Transcript(), [1, 2], 5)


class TestWuProtocol:
    def test_oracle_agreement(self, example_forest):
        rng = np.random.default_rng(3)
        for trial in range(10):
            feats = [int(v) for v in rng.integers(0, 256, 2)]
            outcome = wu_inference(example_forest, feats, seed=trial)
            assert outcome.labels == example_forest.classify_per_tree(feats)

    @pytest.mark.parametrize("spec", MICROBENCHMARKS[:3], ids=lambda s: s.name)
    def test_microbenchmarks(self, spec):
        forest = spec.build()
        rng = np.random.default_rng(9)
        limit = 1 << spec.precision
        for _ in range(3):
            feats = [int(v) for v in rng.integers(0, limit, 2)]
            outcome = wu_inference(forest, feats, precision=spec.precision)
            assert outcome.labels == forest.classify_per_tree(feats)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_models(self, seed):
        forest = random_forest(
            np.random.default_rng(seed), [5, 6], max_depth=4, n_features=3
        )
        feats = [
            int(v) for v in np.random.default_rng(seed + 1).integers(0, 256, 3)
        ]
        outcome = wu_inference(forest, feats, seed=seed)
        assert outcome.labels == forest.classify_per_tree(feats)

    def test_boundary_values(self, example_forest):
        """x == t is the flip construction's tricky boundary."""
        # Thresholds in the example forest: 120, 60, 40, 200, 100, 220.
        for x in (120, 60, 40, 200, 100, 220, 0, 255):
            feats = [x, x]
            outcome = wu_inference(example_forest, feats, seed=0)
            assert outcome.labels == example_forest.classify_per_tree(feats)

    def test_transcript_structure(self, example_forest):
        outcome = wu_inference(example_forest, [50, 50], seed=0)
        kinds = outcome.transcript.kinds()
        assert kinds[0] == "encrypted-features"
        assert kinds[1] == "blinded-comparisons"
        # One OT (two messages) per tree.
        assert kinds[2:] == ["ot-choice-blinded", "ot-masked-items"] * (
            example_forest.n_trees
        )

    def test_comparison_work_is_exponential_in_depth(self, example_forest):
        """The padded comparison count is sum(2^d_t - 1), the scalability
        wall the paper attributes to this family of protocols."""
        outcome = wu_inference(example_forest, [50, 50], seed=0)
        expected_nodes = sum(
            (1 << tree.depth) - 1 for tree in example_forest.trees
        )
        comparisons = outcome.transcript.messages[1]
        assert comparisons.ciphertexts == expected_nodes
        assert outcome.tracker.count(OpKind.AHE_MUL_PLAIN) == expected_nodes

    def test_plurality(self, example_forest):
        outcome = wu_inference(example_forest, [10, 10], seed=0)
        assert outcome.plurality() in outcome.labels

    def test_arity_checked(self, example_forest):
        with pytest.raises(RuntimeProtocolError):
            wu_inference(example_forest, [1])

    def test_domain_checked(self, example_forest):
        with pytest.raises(RuntimeProtocolError):
            wu_inference(example_forest, [300, 0])

    def test_server_reveals_padded_shape_only(self, example_forest):
        server = WuServer(forest=example_forest, precision=8, seed=0)
        shape = server.public_shape()
        assert shape == [tree.depth for tree in example_forest.trees]
