"""Tests for the span tracer and its deterministic exporters."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.trace import (
    NullTracer,
    QUERY_OUTCOMES,
    Tracer,
    chrome_json,
    export_chrome,
    export_jsonl,
)


class TestTracer:
    def test_span_ids_count_from_one(self):
        tracer = Tracer()
        assert tracer.begin("a", now=0.0) == 1
        assert tracer.begin("b", now=0.0) == 2
        assert tracer.event("c", now=0.0) == 3

    def test_begin_end_records_interval(self):
        tracer = Tracer()
        sid = tracer.begin("query", now=1.0, track="tenant:t", seq=4)
        tracer.end(sid, now=3.5, outcome="completed")
        (span,) = tracer.spans()
        assert span.name == "query"
        assert span.track == "tenant:t"
        assert (span.start, span.end, span.duration) == (1.0, 3.5, 2.5)
        assert span.attrs == {"seq": 4, "outcome": "completed"}

    def test_event_is_instant(self):
        tracer = Tracer()
        tracer.event("admit", now=2.0, parent=7)
        (span,) = tracer.spans()
        assert span.duration == 0.0
        assert span.parent == 7

    def test_unknown_end_is_ignored(self):
        tracer = Tracer()
        tracer.end(99, now=1.0)  # must not raise
        sid = tracer.begin("a", now=0.0)
        tracer.end(sid, now=1.0)
        tracer.end(sid, now=2.0)  # double end: second ignored
        (span,) = tracer.spans()
        assert span.end == 1.0

    def test_annotate_open_span(self):
        tracer = Tracer()
        sid = tracer.begin("a", now=0.0)
        tracer.annotate(sid, batch_id=3)
        tracer.annotate(999, nope=True)  # unknown id: no-op
        tracer.end(sid, now=1.0)
        assert tracer.spans()[0].attrs == {"batch_id": 3}

    def test_open_spans_excluded_by_default(self):
        tracer = Tracer()
        tracer.begin("open", now=0.0)
        done = tracer.begin("done", now=0.0)
        tracer.end(done, now=1.0)
        assert [s.name for s in tracer.spans()] == ["done"]
        assert [s.name for s in tracer.spans(include_open=True)] == [
            "open", "done",
        ]
        assert tracer.open_spans == 1

    def test_ring_bound_drops_oldest(self):
        tracer = Tracer(max_spans=2)
        for k in range(4):
            tracer.event(f"e{k}", now=float(k))
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["e2", "e3"]

    def test_max_spans_validated(self):
        with pytest.raises(ValidationError):
            Tracer(max_spans=0)

    def test_outcome_alphabet(self):
        assert QUERY_OUTCOMES == (
            "completed", "rejected", "failed", "cancelled",
        )


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    q = tracer.begin("query", now=0.001, track="tenant:acme", seq=0)
    tracer.event("admit", now=0.001, parent=q, track="tenant:acme")
    w = tracer.begin("queue_wait", now=0.001, parent=q, track="tenant:acme")
    b = tracer.begin("batch", now=0.002, track="worker:0", members=[q])
    tracer.end(w, now=0.002)
    tracer.end(b, now=0.005, size=1)
    tracer.end(q, now=0.005, outcome="completed")
    return tracer


class TestJsonlExport:
    def test_one_record_per_span_in_id_order(self):
        text = _sample_tracer().to_jsonl()
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["span"] for r in records] == [1, 2, 3, 4]
        assert text.endswith("\n")

    def test_records_are_deterministic(self):
        assert _sample_tracer().to_jsonl() == _sample_tracer().to_jsonl()

    def test_record_shape(self):
        record = json.loads(_sample_tracer().to_jsonl().splitlines()[0])
        assert record == {
            "span": 1,
            "parent": None,
            "name": "query",
            "track": "tenant:acme",
            "t0": 0.001,
            "t1": 0.005,
            "attrs": {"outcome": "completed", "seq": 0},
        }

    def test_keys_sorted_within_record(self):
        line = _sample_tracer().to_jsonl().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_empty_exports_empty(self):
        assert export_jsonl([]) == ""


class TestChromeExport:
    def test_document_shape(self):
        doc = _sample_tracer().to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "b", "e", "X"}

    def test_metadata_names_process_and_tracks(self):
        doc = _sample_tracer().to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "repro.serve"
        tracks = [
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        ]
        assert sorted(tracks) == ["tenant:acme", "worker:0"]

    def test_tenant_tracks_export_async_pairs(self):
        doc = _sample_tracer().to_chrome()
        pairs = [
            e for e in doc["traceEvents"]
            if e["ph"] in ("b", "e") and e["name"] == "query"
        ]
        assert [e["ph"] for e in pairs] == ["b", "e"]
        assert pairs[0]["id"] == pairs[1]["id"] == 1
        # Timestamps are microseconds of the span's second-valued clock.
        assert pairs[0]["ts"] == 1000.0
        assert pairs[1]["ts"] == 5000.0

    def test_worker_tracks_export_complete_events(self):
        doc = _sample_tracer().to_chrome()
        (batch,) = [
            e for e in doc["traceEvents"] if e.get("name") == "batch"
        ]
        assert batch["ph"] == "X"
        assert batch["ts"] == 2000.0
        assert batch["dur"] == 3000.0
        assert batch["cat"] == "worker"
        assert batch["args"]["members"] == [1]
        assert batch["args"]["span"] == 4

    def test_parent_links_survive_in_args(self):
        doc = _sample_tracer().to_chrome()
        (wait_b,) = [
            e for e in doc["traceEvents"]
            if e.get("name") == "queue_wait" and e["ph"] == "b"
        ]
        assert wait_b["args"]["parent"] == 1

    def test_chrome_json_is_deterministic_and_loadable(self):
        a = chrome_json(_sample_tracer().spans())
        b = chrome_json(_sample_tracer().spans())
        assert a == b
        assert a.endswith("\n")
        doc = json.loads(a)
        assert doc["traceEvents"]

    def test_empty_trace_still_valid(self):
        doc = export_chrome([])
        assert doc["traceEvents"][0]["name"] == "process_name"
        json.dumps(doc)


class TestNullTracer:
    def test_all_methods_are_stubs(self):
        null = NullTracer()
        assert null.begin("a", now=0.0) == 0
        null.end(0, now=1.0)
        assert null.event("b", now=0.0) == 0
        null.annotate(0, k=1)
        assert null.spans() == []
        assert null.to_jsonl() == ""
        assert null.to_chrome()["traceEvents"]
        assert null.dropped == 0
        assert null.open_spans == 0
