"""Tracing-disabled overhead guard for the batched serve tape.

The observability contract is *zero-cost when disabled*: with no tracer
and no profiler, the serve path's tape execution must perform exactly
the primitive-op sequence the compiled tape's static profile pins —
instrumentation that leaks into the hot path (an extra encode, a stray
snapshot that touches the backend, a defensive copy) shows up as extra
tracked ops.  The guard prices the live execution window with the cost
model and holds it within 3 % of ``plan_baseline.json``'s
``width78@batched`` tape cost (in practice the two are equal to the
rounding digit).  Deterministic — no wall-clock flakiness — and runs
under whatever ``$REPRO_BACKEND`` CI selects.
"""

import json
from pathlib import Path

import pytest

from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.ir.plan import bind_model_query
from repro.serve.batched_runtime import encrypt_batch
from repro.serve.registry import ModelRegistry

BASELINE_PATH = (
    Path(__file__).parent.parent / "bench" / "plan_baseline.json"
)

#: The ISSUE 6 acceptance bar: <3 % regression with tracing disabled.
OVERHEAD_TOLERANCE = 1.03


@pytest.fixture(scope="module")
def baseline_tape_cost() -> float:
    baseline = json.loads(BASELINE_PATH.read_text())
    return baseline["width78@batched"]["tape"]["cost_ms"]


def untraced_execute_cost_ms() -> float:
    """Cost-model ms of one untraced full-capacity tape execution.

    Measured as the tracker's op delta over exactly the execute window
    (binding/encryption excluded), priced per op — the same recipe that
    produced the baseline's ``cost_ms`` from the static profile.
    """
    from repro.bench_harness.workloads import workload_by_name

    workload = workload_by_name("width78")
    params = EncryptionParams.paper_defaults()
    registered = ModelRegistry().register(
        "guard", workload.compiled, params=params, engine="tape"
    )
    ctx = FheContext(params, backend=registered.backend)
    queries = workload.query_features(registered.layout.capacity)
    query = encrypt_batch(ctx, registered.layout, queries, registered.keys)
    bindings = bind_model_query(
        ctx,
        registered.tape.input_widths,
        registered.tape.encrypted_model,
        registered.tape.model_fingerprint,
        registered.batched_model,
        query,
    )
    before = ctx.tracker.counts_snapshot()
    registered.tape.execute(ctx, bindings)  # tracer/profiler disabled
    after = ctx.tracker.counts_snapshot()
    cost_model = CostModel(params)
    return sum(
        cost_model.cost_of(kind) * (after[kind] - before.get(kind, 0))
        for kind in after
    )


def test_untraced_serve_tape_within_3pct_of_baseline(baseline_tape_cost):
    live = untraced_execute_cost_ms()
    assert live <= baseline_tape_cost * OVERHEAD_TOLERANCE, (
        f"tracing-disabled tape execution costs {live:.3f} ms vs "
        f"baseline {baseline_tape_cost:.3f} ms "
        f"(> {OVERHEAD_TOLERANCE:.0%} bar): instrumentation is leaking "
        f"into the un-profiled hot path"
    )
