"""Trace determinism and span conservation under the simulator.

The tracer follows the scheduler's explicit-clock discipline, so a
:class:`~repro.serve.loadgen.SimRunner` soak under a fixed seed must
export **byte-identical** traces across runs — both the JSONL and the
Chrome trace-event document.  And every submitted query must leave
exactly one root ``query`` span ending in a terminal outcome: the
span-level mirror of the scheduler's conservation invariant.
"""

import json

from repro.obs.trace import QUERY_OUTCOMES, Tracer, chrome_json
from repro.serve import (
    FaultPlan,
    ModelProfile,
    SimRunner,
    TenantSpec,
    generate_arrivals,
)

FAULTS = FaultPlan(
    worker_crashes=(0.5, 1.5, 2.5), slow_every=5, slow_factor=3.0
)


def soak_setup():
    profiles = [
        ModelProfile(name="credit", capacity=4, service_ms=60.0,
                     max_pending=24),
        ModelProfile(name="fraud", capacity=8, service_ms=150.0,
                     weight=2.0, max_pending=64),
    ]
    tenants = [
        TenantSpec(name="acme", model="credit", rate_qps=30.0,
                   deadline_ms=400.0),
        TenantSpec(name="globex", model="fraud", rate_qps=20.0,
                   deadline_ms=900.0),
        TenantSpec(name="spiky", model="credit", burst_every_s=0.5,
                   burst_size=6, deadline_ms=500.0, priority=1),
    ]
    return profiles, tenants


def traced_soak(seed: int = 7, queries: int = 600):
    profiles, tenants = soak_setup()
    arrivals = generate_arrivals(tenants, seed=seed,
                                 total_queries=queries)
    tracer = Tracer()
    runner = SimRunner(profiles, threads=3, tracer=tracer)
    report = runner.run(arrivals, FAULTS)
    return tracer, report


class TestByteIdenticalExports:
    def test_jsonl_identical_across_same_seed_runs(self):
        first, _ = traced_soak()
        second, _ = traced_soak()
        a, b = first.to_jsonl(), second.to_jsonl()
        assert a.encode() == b.encode()
        assert a  # the soak actually traced something

    def test_chrome_identical_across_same_seed_runs(self):
        first, _ = traced_soak()
        second, _ = traced_soak()
        assert chrome_json(first.spans()).encode() == chrome_json(
            second.spans()
        ).encode()

    def test_different_seeds_diverge(self):
        first, _ = traced_soak(seed=7)
        second, _ = traced_soak(seed=8)
        assert first.to_jsonl() != second.to_jsonl()


class TestProfilerClockDeterminism:
    """The profiler half of the byte-identity contract.

    ``TapeProfiler`` used to default its instruction timer to
    ``time.perf_counter`` even when the caller drove everything else
    off a :class:`~repro.serve.simclock.VirtualClock`, smuggling
    nondeterministic wall time into otherwise replayable artifacts.
    With ``clock=`` threaded through, a virtual-clock profile of the
    same execution is byte-identical across runs.
    """

    @staticmethod
    def profiled_run(clock):
        import numpy as np

        from repro.core.compiler import CopseCompiler
        from repro.fhe.context import FheContext
        from repro.forest.synthetic import random_forest
        from repro.ir.plan import bind_model_query
        from repro.obs.profiler import TapeProfiler
        from repro.serve.batched_runtime import encrypt_batch
        from repro.serve.registry import ModelRegistry

        forest = random_forest(
            np.random.default_rng(7), branches_per_tree=[7, 8],
            max_depth=5,
        )
        compiled = CopseCompiler(precision=8).compile(forest)
        registered = ModelRegistry().register(
            "prof-det", compiled, engine="tape", backend="vector"
        )
        tape = registered.tape
        ctx = FheContext(registered.params, backend=registered.backend)
        rng = np.random.default_rng(3)
        queries = [
            [int(v) for v in rng.integers(0, 256, compiled.n_features)]
            for _ in range(registered.layout.capacity)
        ]
        query = encrypt_batch(
            ctx, registered.layout, queries, registered.keys
        )
        bindings = bind_model_query(
            ctx,
            tape.input_widths,
            tape.encrypted_model,
            tape.model_fingerprint,
            registered.batched_model,
            query,
        )
        profiler = TapeProfiler(clock=clock)
        tape.execute(ctx, bindings, profiler=profiler)
        return profiler

    def test_virtual_clock_profile_byte_identical(self):
        from repro.serve import VirtualClock

        first = self.profiled_run(VirtualClock())
        second = self.profiled_run(VirtualClock())
        a = json.dumps(first.as_dict(), sort_keys=True)
        b = json.dumps(second.as_dict(), sort_keys=True)
        assert a.encode() == b.encode()
        assert first.samples, "the profiled run recorded nothing"
        # Virtual time never advanced: zero wall, real op counts.
        assert first.total_wall_s == 0.0
        assert first.op_totals()

    def test_clock_threads_through_to_timer(self):
        from repro.obs.profiler import TapeProfiler
        from repro.serve import VirtualClock

        clock = VirtualClock()
        profiler = TapeProfiler(clock=clock)
        assert profiler.timer == clock.now  # same bound method
        clock.advance_to(2.5)
        assert profiler.timer() == 2.5
        # Explicit timer wins; no clock means real wall time.
        import time

        assert TapeProfiler().timer is time.perf_counter
        fake = lambda: 1.0  # noqa: E731
        assert TapeProfiler(timer=fake, clock=clock).timer is fake


class TestSpanConservation:
    def test_every_submission_ends_in_exactly_one_outcome(self):
        tracer, report = traced_soak()
        roots = [s for s in tracer.spans() if s.name == "query"]
        assert len(roots) == report.stats.submitted
        by_outcome = {outcome: 0 for outcome in QUERY_OUTCOMES}
        for span in roots:
            assert span.end is not None, f"span {span.span_id} never ended"
            outcome = span.attrs.get("outcome")
            assert outcome in QUERY_OUTCOMES, (
                f"span {span.span_id} ended with outcome {outcome!r}"
            )
            by_outcome[outcome] += 1
        stats = report.stats
        assert by_outcome["completed"] == stats.completed
        assert by_outcome["rejected"] == stats.rejected
        assert by_outcome["failed"] == stats.failed
        assert by_outcome["cancelled"] == stats.cancelled
        assert sum(by_outcome.values()) == stats.submitted

    def test_no_spans_left_open_after_drain(self):
        tracer, _ = traced_soak()
        assert tracer.open_spans == 0

    def test_batch_spans_link_member_queries(self):
        tracer, report = traced_soak()
        spans = tracer.spans()
        roots = {s.span_id for s in spans if s.name == "query"}
        batches = [s for s in spans if s.name == "batch"]
        assert len(batches) == report.stats.batches
        for batch in batches:
            members = batch.attrs.get("members")
            assert members, f"batch span {batch.span_id} has no members"
            assert set(members) <= roots

    def test_queue_wait_nests_inside_its_query(self):
        tracer, _ = traced_soak(queries=200)
        spans = {s.span_id: s for s in tracer.spans()}
        waits = [s for s in spans.values() if s.name == "queue_wait"]
        assert waits
        for wait in waits:
            parent = spans[wait.parent]
            assert parent.name == "query"
            assert parent.start <= wait.start
            assert wait.end <= parent.end


class TestChromeDocument:
    def test_export_covers_submit_to_resolve(self):
        tracer, report = traced_soak(queries=200)
        doc = json.loads(chrome_json(tracer.spans()))
        events = doc["traceEvents"]
        # Every root query span appears as one async begin/end pair.
        begins = [
            e for e in events if e["ph"] == "b" and e["name"] == "query"
        ]
        ends = [
            e for e in events if e["ph"] == "e" and e["name"] == "query"
        ]
        assert len(begins) == len(ends) == report.stats.submitted
        assert {e["id"] for e in begins} == {e["id"] for e in ends}
        # Batches render as complete slices on worker tracks.
        slices = [
            e for e in events if e["ph"] == "X" and e["name"] == "batch"
        ]
        assert len(slices) == report.stats.batches
        for s in slices:
            assert s["dur"] >= 0
