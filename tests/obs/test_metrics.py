"""Tests for the bounded-memory metrics registry."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0

    def test_histogram_exact_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.max == 3.0

    def test_histogram_window_bounds_memory(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", window=4)
        for v in range(100):
            h.observe(float(v))
        # Exact aggregates cover the lifetime; the window keeps the tail.
        assert h.count == 100
        assert h.max == 99.0
        assert h.window_values() == [96.0, 97.0, 98.0, 99.0]
        assert h.percentile(0.5) == 97.0

    def test_histogram_rejects_empty_window(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.histogram("bad", window=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")
        with pytest.raises(ValidationError):
            reg.histogram("x")


class TestPercentile:
    def test_nearest_rank(self):
        ranked = [1.0, 2.0, 3.0, 4.0]
        assert percentile(ranked, 0.5) == 2.0
        assert percentile(ranked, 0.99) == 4.0
        assert percentile(ranked, 1.0) == 4.0

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_matches_scheduler_recipe(self):
        # The scheduler's latency percentiles predate the registry; the
        # re-backing must not move them: nearest rank = ceil(q * n).
        ranked = [float(v) for v in range(1, 101)]
        assert percentile(ranked, 0.5) == 50.0
        assert percentile(ranked, 0.99) == 99.0

    def test_quantiles_single_sort(self):
        h = Histogram(__import__("threading").Lock())
        for v in (5.0, 1.0, 3.0):
            h.observe(v)
        assert h.quantiles((0.5, 0.99)) == {0.5: 3.0, 0.99: 5.0}


class TestLabels:
    def test_labeled_children_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", {"op": "add"})
        b = reg.counter("ops", {"op": "mul"})
        assert a is not b
        a.inc(3)
        assert reg.counter_value("ops", {"op": "add"}) == 3.0
        assert reg.counter_value("ops", {"op": "mul"}) == 0.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", {"b": "2", "a": "1"})
        b = reg.counter("x", {"a": "1", "b": "2"})
        assert a is b

    def test_labeled_values_readback(self):
        reg = MetricsRegistry()
        reg.counter("per_tenant", {"tenant": "b"}).inc(2)
        reg.counter("per_tenant", {"tenant": "a"}).inc(5)
        assert reg.labeled_values("per_tenant") == {"a": 5.0, "b": 2.0}
        assert list(reg.labeled_values("per_tenant")) == ["a", "b"]

    def test_counter_value_absent_is_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0

    def test_family_lists_children(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.counter("x", {"k": "v"})
        assert set(reg.family("x")) == {(), ("k=v",)}
        assert reg.names() == ["x"]


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("submitted").inc(7)
        reg.counter("ops", {"op": "add"}).inc(3)
        reg.gauge("inflight").set(2)
        h = reg.histogram("latency_ms")
        for v in (1.5, 2.5, 10.0):
            h.observe(v)
        return reg

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["counters"] == {"submitted": 7.0, 'ops{op="add"}': 3.0}
        assert snap["gauges"] == {"inflight": 2.0}
        hist = snap["histograms"]["latency_ms"]
        assert hist["count"] == 3
        assert hist["sum"] == 14.0
        assert hist["max"] == 10.0
        assert hist["p50"] == 2.5
        assert hist["p99"] == 10.0

    def test_snapshot_is_json_able_and_deterministic(self):
        a = json.dumps(self._populated().snapshot(), sort_keys=True)
        b = json.dumps(self._populated().snapshot(), sort_keys=True)
        assert a == b

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.counter("alpha").inc()
        assert list(reg.snapshot()["counters"]) == ["alpha", "zeta"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("submitted").inc(7)
        reg.gauge("inflight").set(2)
        text = reg.render_prometheus()
        assert "# TYPE submitted counter" in text
        assert "submitted 7" in text
        assert "# TYPE inflight gauge" in text
        assert "inflight 2" in text
        assert text.endswith("\n")

    def test_labeled_counter_line(self):
        reg = MetricsRegistry()
        reg.counter("ops", {"op": "add"}).inc(3)
        assert 'ops{op="add"} 3' in reg.render_prometheus()

    def test_histogram_exports_as_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in (1.0, 2.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert "# TYPE latency summary" in text
        assert 'latency{quantile="0.5"} 1' in text
        assert 'latency{quantile="0.99"} 2' in text
        assert "latency_sum 3" in text
        assert "latency_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
