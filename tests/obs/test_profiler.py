"""Tests for the opt-in tape/executor profiler.

The acceptance bar: per-instruction op-count deltas must reconcile
**exactly** with the tracker's own totals over the profiled execution
window, and profiling must not change results (the instrumented loop is
a separate walk, not a behavioral fork).
"""

import numpy as np
import pytest

from repro.fhe.tracker import OpKind
from repro.ir import executor
from repro.ir.plan import bind_model_query, lower_inference
from repro.obs.profiler import InstructionSample, TapeProfiler


def random_features(rng, n, precision=8):
    return [int(v) for v in rng.integers(0, 1 << precision, n)]


def _counts_delta(before, after):
    return {
        kind: after[kind] - before.get(kind, 0)
        for kind in after
        if after[kind] != before.get(kind, 0)
    }


@pytest.fixture(scope="module")
def batched_setup():
    """A registered batched tape plus live bindings, built once."""
    from repro.core.compiler import CopseCompiler
    from repro.fhe.context import FheContext
    from repro.forest.synthetic import random_forest
    from repro.serve.batched_runtime import encrypt_batch
    from repro.serve.registry import ModelRegistry

    forest = random_forest(
        np.random.default_rng(7), branches_per_tree=[7, 8], max_depth=5
    )
    compiled = CopseCompiler(precision=8).compile(forest)
    registered = ModelRegistry().register("prof", compiled, engine="tape")
    tape = registered.tape
    ctx = FheContext(registered.params, backend=registered.backend)
    rng = np.random.default_rng(3)
    queries = [
        random_features(rng, compiled.n_features)
        for _ in range(registered.layout.capacity)
    ]
    query = encrypt_batch(
        ctx, registered.layout, queries, registered.keys
    )
    bindings = bind_model_query(
        ctx,
        tape.input_widths,
        tape.encrypted_model,
        tape.model_fingerprint,
        registered.batched_model,
        query,
    )
    return ctx, tape, bindings, registered.keys


class TestTapeReconciliation:
    def test_samples_reconcile_exactly_with_tracker(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup
        profiler = TapeProfiler()
        before = ctx.tracker.counts_snapshot()
        tape.execute(ctx, bindings, profiler=profiler)
        after = ctx.tracker.counts_snapshot()
        assert profiler.op_totals() == _counts_delta(before, after)
        assert len(profiler.samples) == tape.num_instructions
        assert profiler.runs == 1

    def test_profiled_and_unprofiled_results_match(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup
        plain = tape.execute(ctx, bindings)
        profiled = tape.execute(ctx, bindings, profiler=TapeProfiler())
        assert set(plain) == set(profiled)
        for name in plain:
            np.testing.assert_array_equal(
                ctx.decrypt(plain[name], keys.secret),
                ctx.decrypt(profiled[name], keys.secret),
            )

    def test_profiling_adds_no_backend_ops(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup

        def delta(profiler):
            before = ctx.tracker.counts_snapshot()
            tape.execute(ctx, bindings, profiler=profiler)
            return _counts_delta(before, ctx.tracker.counts_snapshot())

        assert delta(None) == delta(TapeProfiler())

    def test_noise_depth_readout(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup
        profiler = TapeProfiler()
        tape.execute(ctx, bindings, profiler=profiler)
        assert profiler.max_depth == tape.profile.depth
        depths = [s.depth for s in profiler.samples if s.depth is not None]
        assert depths and max(depths) == profiler.max_depth

    def test_samples_accumulate_across_runs(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup
        profiler = TapeProfiler()
        tape.execute(ctx, bindings, profiler=profiler)
        tape.execute(ctx, bindings, profiler=profiler)
        assert profiler.runs == 2
        assert len(profiler.samples) == 2 * tape.num_instructions

    def test_phase_scoped_profiling(self, batched_setup):
        ctx, tape, bindings, keys = batched_setup
        profiler = TapeProfiler()
        tape.execute(ctx, bindings, phase="probe", profiler=profiler)
        phase = ctx.tracker.phase_stats("probe")
        assert profiler.op_totals() == {
            kind: n for kind, n in phase.counts.items() if n
        }


def single_query_bindings(compiled, ctx, keys):
    from repro.core.runtime import DataOwner, ModelOwner

    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    rng = np.random.default_rng(11)
    query = diane.prepare_query(
        ctx, random_features(rng, compiled.n_features)
    )
    model = maurice.encrypt_model(ctx, keys.public)
    plan = lower_inference(compiled)
    return plan, plan.bindings_for(ctx, model, query)


class TestExecutorReconciliation:
    def test_graph_walk_reconciles(self, compiled_example, ctx, keys):
        plan, bindings = single_query_bindings(compiled_example, ctx, keys)
        profiler = TapeProfiler()
        before = ctx.tracker.counts_snapshot()
        profiled = executor.execute(
            plan.graph, ctx, bindings, profiler=profiler
        )
        after = ctx.tracker.counts_snapshot()
        assert profiler.op_totals() == _counts_delta(before, after)
        plain = executor.execute(plan.graph, ctx, bindings)
        for name in plain:
            np.testing.assert_array_equal(
                ctx.decrypt(plain[name], keys.secret),
                ctx.decrypt(profiled[name], keys.secret),
            )

    def test_binding_nodes_are_not_sampled(self, compiled_example, ctx,
                                           keys):
        plan, bindings = single_query_bindings(compiled_example, ctx, keys)
        profiler = TapeProfiler()
        executor.execute(
            plan.graph, ctx, bindings, profiler=profiler
        )
        assert profiler.samples
        opcodes = {s.opcode for s in profiler.samples}
        assert not opcodes & {"input_ct", "input_pt", "const_pt"}


class TestAggregation:
    def _fake(self):
        profiler = TapeProfiler(timer=lambda: 0.0)
        profiler.begin_run()
        samples = [
            (0, "mul", 0.002, {OpKind.MULTIPLY: 1}),
            (1, "mul", 0.004, {OpKind.MULTIPLY: 1}),
            (2, "rotate", 0.001, {OpKind.ROTATE: 1}),
            (3, "fused", 0.010, {OpKind.MULTIPLY: 2, OpKind.ADD: 3}),
        ]
        for index, opcode, wall, counts in samples:
            profiler.samples.append(
                InstructionSample(index, opcode, wall, counts, index + 1)
            )
        return profiler

    def test_by_opcode_sorted_by_wall(self):
        by_op = self._fake().by_opcode()
        assert list(by_op) == ["fused", "mul", "rotate"]
        assert by_op["mul"].instructions == 2
        assert by_op["mul"].wall_s == pytest.approx(0.006)
        assert by_op["fused"].ops == 5
        assert by_op["fused"].max_depth == 4

    def test_range_totals_half_open(self):
        totals = self._fake().range_totals(1, 3)
        assert totals.instructions == 2
        assert totals.ops == 2
        assert totals.wall_s == pytest.approx(0.005)

    def test_totals_and_max_depth(self):
        profiler = self._fake()
        assert profiler.total_wall_s == pytest.approx(0.017)
        assert profiler.max_depth == 4
        assert profiler.op_totals() == {
            OpKind.MULTIPLY: 4, OpKind.ROTATE: 1, OpKind.ADD: 3,
        }

    def test_report_renders(self):
        text = self._fake().report(ranges=2)
        assert "profiled runs: 1, samples: 4" in text
        assert "fused" in text
        assert "[0:2)" in text and "[2:4)" in text

    def test_as_dict_shape(self):
        record = self._fake().as_dict()
        assert record["runs"] == 1
        assert record["samples"] == 4
        assert record["max_depth"] == 4
        assert record["op_totals"] == {"add": 3, "multiply": 4, "rotate": 1}
        assert record["opcodes"]["fused"]["op_counts"] == {
            "add": 3, "multiply": 2,
        }
        import json

        json.dumps(record)

    def test_instruction_delta_and_depth_capture(self, ctx, keys):
        profiler = TapeProfiler()
        ct = ctx.encrypt([1, 0, 1], keys.public)
        squared = ctx.multiply(ct, ct)
        profiler.instruction(
            0, "mul", 0.001,
            {OpKind.MULTIPLY: 3}, {OpKind.MULTIPLY: 5, OpKind.ADD: 0},
            squared,
        )
        (sample,) = profiler.samples
        assert sample.op_counts == {OpKind.MULTIPLY: 2}
        assert sample.depth == squared.noise.effective_depth
        assert sample.ops == 2

    def test_plaintext_result_has_no_depth(self):
        profiler = TapeProfiler()
        profiler.instruction(0, "const_add", 0.0, {}, {OpKind.ADD: 1},
                             "not-a-ciphertext")
        assert profiler.samples[0].depth is None
