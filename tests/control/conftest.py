"""Shared builders for the control-plane tests."""

import pytest

from repro.control import ControlSnapshot, QueueSignal


def check_audit_grammar(controller):
    """Every applied actuation passed a guard; every veto has a reason."""
    preceding_pass = None
    for record in controller.decision_log:
        if record[0] == "guard" and record[3] == "passed":
            preceding_pass = (record[1], record[2])  # (tick, kind)
        elif record[0] == "applied":
            assert preceding_pass == (record[1], record[2]), (
                f"applied without a preceding guard pass: {record}"
            )
            preceding_pass = None
        elif record[0] == "guard" and record[3] == "rejected":
            assert isinstance(record[4], str) and record[4], (
                f"rejection without a reason: {record}"
            )
        elif record[0] == "apply_failed":
            assert isinstance(record[3], str) and record[3], (
                f"apply failure without a reason: {record}"
            )


@pytest.fixture
def audit_grammar():
    return check_audit_grammar


@pytest.fixture
def make_snapshot():
    """Build a ControlSnapshot with only the interesting fields set."""

    def build(
        now=0.0,
        live_workers=2,
        free_workers=1,
        submitted=0,
        completed=0,
        rejected=0,
        failed=0,
        deadline_misses=0,
        worker_crashes=0,
        latency_p50_ms=0.0,
        latency_p99_ms=0.0,
        queues=(),
        dead_lettered=0,
        degraded=(),
    ):
        return ControlSnapshot(
            now=now,
            live_workers=live_workers,
            free_workers=free_workers,
            submitted=submitted,
            completed=completed,
            rejected=rejected,
            failed=failed,
            deadline_misses=deadline_misses,
            worker_crashes=worker_crashes,
            latency_p50_ms=latency_p50_ms,
            latency_p99_ms=latency_p99_ms,
            queues=tuple(queues),
            dead_lettered=dead_lettered,
            degraded=tuple(degraded),
        )

    return build


@pytest.fixture
def make_queue():
    def build(name="q", depth=0, estimated_batch_ms=50.0, weight=1.0,
              limit=None):
        return QueueSignal(
            name=name,
            depth=depth,
            estimated_batch_ms=estimated_batch_ms,
            weight=weight,
            limit=limit,
        )

    return build
