"""Acceptance: the seeded autoscale soak against ClusterSimRunner.

The canonical three-phase ramp (underload -> burst -> decay, one worker
crash mid-burst) from :func:`repro.bench_harness.experiments.autoscale_run`:

* byte-identical decision-log replay per seed,
* SLO held by the controller where the static baseline misses,
* conservation intact under live scaling,
* the audit grammar on the full log.
"""

import json

from repro.bench_harness import experiments


def run_pair():
    controlled = experiments.autoscale_run(autoscale=True)
    static = experiments.autoscale_run(autoscale=False)
    return controlled, static


class TestAutoscaleSoak:
    def test_decision_log_replays_byte_identical(self):
        _, first, _ = experiments.autoscale_run(autoscale=True)
        _, second, _ = experiments.autoscale_run(autoscale=True)
        assert json.dumps(first.decision_log) == json.dumps(
            second.decision_log
        )
        assert first.decision_log, "the ramp must exercise the controller"

    def test_controller_holds_slo_where_static_misses(self):
        (report, controller, scenario), (static_report, _, _) = run_pair()
        deadline = scenario["deadline_ms"]
        assert static_report.stats.latency_p99_ms > deadline, (
            "the burst must bury the static pool for this scenario to "
            "mean anything"
        )
        assert report.stats.latency_p99_ms <= deadline
        assert (
            report.stats.deadline_miss_rate
            < static_report.stats.deadline_miss_rate
        )

    def test_scales_up_through_the_burst_and_back_down(self):
        report, controller, _ = experiments.autoscale_run(autoscale=True)
        deltas = [
            r[3] for r in controller.applied() if r[2] == "scale_workers"
        ]
        assert any(d > 0 for d in deltas), "burst must trigger scale-up"
        assert any(d < 0 for d in deltas), "decay must trigger scale-down"
        # Crash accounting survived the scaling (the mid-burst crash).
        assert report.stats.worker_crashes == 1

    def test_conservation_and_audit(self, audit_grammar):
        (report, controller, _), (static_report, _, _) = run_pair()
        for stats in (report.stats, static_report.stats):
            assert stats.submitted == (
                stats.completed + stats.rejected + stats.failed
                + stats.cancelled
            )
        audit_grammar(controller)

    def test_table_has_both_modes(self):
        table = experiments.autoscale()
        modes = [row[0] for row in table.rows]
        assert modes == ["static", "autoscale"]
        assert table.columns[0] == "mode"
        # The controller row completes more work within deadline.
        static_row = dict(zip(table.columns, table.rows[0]))
        auto_row = dict(zip(table.columns, table.rows[1]))
        assert auto_row["miss_rate"] < static_row["miss_rate"]
        assert auto_row["peak_workers"] > static_row["peak_workers"]
