"""Guard-rail invariants: every proposal vetted, every veto explained.

The rail must fail closed — anything it cannot vouch for is rejected
with a human-readable reason, never silently dropped or waved through.
"""

import pytest

from repro.control import (
    AdjustTenantWeight,
    GuardConfig,
    GuardRail,
    Proposal,
    ScaleWorkers,
    SetAdmissionLimit,
    SwitchBackend,
    SwitchEngine,
)
from repro.errors import ValidationError


class TestGuardConfigValidation:
    def test_defaults_are_valid(self):
        GuardConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers_min": 0},
            {"workers_min": 4, "workers_max": 2},
            {"weight_min": 0.0},
            {"weight_min": 2.0, "weight_max": 1.0},
            {"max_weight_step": 0.5},
            {"admission_min": 0},
            {"admission_min": 10, "admission_max": 5},
            {"cooldown_s": -1.0},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            GuardConfig(**kwargs)


class TestScaleGuards:
    def test_in_range_scale_up_passes(self, make_snapshot):
        rail = GuardRail(GuardConfig(workers_min=1, workers_max=4))
        snap = make_snapshot(live_workers=2)
        assert rail.check(ScaleWorkers(delta=1, reason="r"), snap, 0.0) is None

    def test_above_workers_max_rejected(self, make_snapshot):
        rail = GuardRail(GuardConfig(workers_min=1, workers_max=4))
        snap = make_snapshot(live_workers=4)
        reason = rail.check(ScaleWorkers(delta=1, reason="r"), snap, 0.0)
        assert reason is not None and "workers_max" in reason

    def test_below_workers_min_rejected(self, make_snapshot):
        rail = GuardRail(GuardConfig(workers_min=2, workers_max=4))
        snap = make_snapshot(live_workers=2, free_workers=2)
        reason = rail.check(ScaleWorkers(delta=-1, reason="r"), snap, 0.0)
        assert reason is not None and "workers_min" in reason

    def test_zero_delta_rejected(self, make_snapshot):
        rail = GuardRail()
        reason = rail.check(
            ScaleWorkers(delta=0, reason="r"), make_snapshot(), 0.0
        )
        assert reason is not None

    def test_scale_down_never_exceeds_idle_workers(self, make_snapshot):
        # In-flight epoch safety: a busy worker is never torn down.
        rail = GuardRail(GuardConfig(workers_min=1, workers_max=8))
        snap = make_snapshot(live_workers=4, free_workers=1)
        reason = rail.check(ScaleWorkers(delta=-2, reason="r"), snap, 0.0)
        assert reason is not None and "epoch safety" in reason

    def test_scale_down_within_idle_passes(self, make_snapshot):
        rail = GuardRail(GuardConfig(workers_min=1, workers_max=8))
        snap = make_snapshot(live_workers=4, free_workers=2)
        assert rail.check(
            ScaleWorkers(delta=-2, reason="r"), snap, 0.0
        ) is None


class TestWeightGuards:
    def test_unknown_queue_rejected(self, make_snapshot):
        rail = GuardRail()
        reason = rail.check(
            AdjustTenantWeight(queue="ghost", weight=2.0, reason="r"),
            make_snapshot(), 0.0,
        )
        assert reason is not None and "ghost" in reason

    def test_out_of_range_weight_rejected(self, make_snapshot, make_queue):
        rail = GuardRail(GuardConfig(weight_min=0.5, weight_max=4.0))
        snap = make_snapshot(queues=[make_queue(name="q", weight=1.0)])
        reason = rail.check(
            AdjustTenantWeight(queue="q", weight=8.0, reason="r"),
            snap, 0.0,
        )
        assert reason is not None and "outside" in reason

    def test_step_ratio_bounded(self, make_snapshot, make_queue):
        rail = GuardRail(GuardConfig(max_weight_step=2.0, weight_max=32.0))
        snap = make_snapshot(queues=[make_queue(name="q", weight=1.0)])
        reason = rail.check(
            AdjustTenantWeight(queue="q", weight=8.0, reason="r"),
            snap, 0.0,
        )
        assert reason is not None and "max step" in reason
        # The same target is fine from a closer starting weight.
        snap = make_snapshot(queues=[make_queue(name="q", weight=4.0)])
        assert rail.check(
            AdjustTenantWeight(queue="q", weight=8.0, reason="r"),
            snap, 0.0,
        ) is None


class TestAdmissionGuards:
    def test_unbounding_is_not_guardable(self, make_snapshot):
        rail = GuardRail()
        reason = rail.check(
            SetAdmissionLimit(queue="q", limit=None, reason="r"),
            make_snapshot(), 0.0,
        )
        assert reason is not None

    def test_range_enforced(self, make_snapshot):
        rail = GuardRail(GuardConfig(admission_min=4, admission_max=64))
        low = rail.check(
            SetAdmissionLimit(queue="q", limit=2, reason="r"),
            make_snapshot(), 0.0,
        )
        high = rail.check(
            SetAdmissionLimit(queue="q", limit=128, reason="r"),
            make_snapshot(), 0.0,
        )
        ok = rail.check(
            SetAdmissionLimit(queue="q", limit=32, reason="r"),
            make_snapshot(), 0.0,
        )
        assert low is not None and "admission_min" in low
        assert high is not None and "admission_max" in high
        assert ok is None


class TestSwitchGuards:
    def test_undeclared_model_fails_closed(self, make_snapshot):
        rail = GuardRail()
        reason = rail.check(
            SwitchEngine(model="m", engine="tape",
                         expected_fingerprint="abc", reason="r"),
            make_snapshot(), 0.0,
        )
        assert reason is not None and "fail-closed" in reason

    def test_fingerprint_mismatch_rejected(self, make_snapshot):
        rail = GuardRail(GuardConfig(fingerprints={"m": "good"}))
        reason = rail.check(
            SwitchEngine(model="m", engine="tape",
                         expected_fingerprint="evil", reason="r"),
            make_snapshot(), 0.0,
        )
        assert reason is not None and "does not match" in reason

    def test_matching_fingerprint_passes(self, make_snapshot):
        rail = GuardRail(GuardConfig(fingerprints={"m": "good"}))
        assert rail.check(
            SwitchEngine(model="m", engine="tape",
                         expected_fingerprint="good", reason="r"),
            make_snapshot(), 0.0,
        ) is None
        assert rail.check(
            SwitchBackend(model="m", backend="vector",
                          expected_fingerprint="good", reason="r"),
            make_snapshot(), 0.0,
        ) is None

    def test_invalid_engine_rejected(self, make_snapshot):
        rail = GuardRail(GuardConfig(fingerprints={"m": "good"}))
        reason = rail.check(
            SwitchEngine(model="m", engine="jit",
                         expected_fingerprint="good", reason="r"),
            make_snapshot(), 0.0,
        )
        assert reason is not None and "invalid" in reason


class TestCooldownAndFailClosed:
    def test_cooldown_blocks_within_window_only(self, make_snapshot):
        rail = GuardRail(GuardConfig(workers_max=8, cooldown_s=5.0))
        snap = make_snapshot(live_workers=2)
        up = ScaleWorkers(delta=1, reason="r")
        assert rail.check(up, snap, 10.0) is None
        rail.record_applied(up, 10.0)
        blocked = rail.check(up, snap, 12.0)
        assert blocked is not None and "cooldown" in blocked
        assert rail.check(up, snap, 15.0) is None

    def test_cooldown_is_per_kind(self, make_snapshot, make_queue):
        rail = GuardRail(GuardConfig(cooldown_s=5.0))
        snap = make_snapshot(
            live_workers=2,
            queues=[make_queue(name="q", weight=1.0)],
        )
        up = ScaleWorkers(delta=1, reason="r")
        rail.record_applied(up, 0.0)
        # A different kind is not gated by the scale cooldown.
        assert rail.check(
            AdjustTenantWeight(queue="q", weight=2.0, reason="r"),
            snap, 1.0,
        ) is None

    def test_unknown_proposal_kind_fails_closed(self, make_snapshot):
        class Mystery(Proposal):
            kind = "mystery"

            def log_fields(self):
                return (self.kind,)

        rail = GuardRail()
        reason = rail.check(Mystery(reason="r"), make_snapshot(), 0.0)
        assert reason is not None and "mystery" in reason


class TestMegakernelSwitch:
    def test_megakernel_is_a_valid_switch_target(self, make_snapshot):
        rail = GuardRail(GuardConfig(fingerprints={"m": "fp"}))
        verdict = rail.check(
            SwitchEngine(model="m", engine="megakernel",
                         expected_fingerprint="fp", reason="r"),
            make_snapshot(), 0.0,
        )
        assert verdict is None
