"""The controller closed over the discrete-event simulators.

The determinism witness of the whole control plane: same seed, same
policies, same guard config => byte-identical decision log (compared
via ``json.dumps``), with scheduling conservation intact and the audit
grammar — every ``applied`` preceded by its ``guard ... passed``, every
rejection carrying a reason — holding on every run.
"""

import json

import pytest

from repro.control import (
    AutoscalePolicy,
    ClusterSimPlant,
    Controller,
    GuardConfig,
    GuardRail,
    Policy,
    ScaleWorkers,
    SimPlant,
    SwitchEngine,
)
from repro.errors import ValidationError
from repro.serve import (
    FaultPlan,
    ModelProfile,
    SimRunner,
    TenantSpec,
    generate_arrivals,
)
from repro.serve.cluster import ClusterSimRunner


def profile(**kwargs):
    defaults = dict(name="m", capacity=4, service_ms=50.0,
                    max_pending=256)
    defaults.update(kwargs)
    return ModelProfile(**defaults)


def burst_arrivals(seed=11, queries=900):
    """Underload, then a burst that buries two workers."""
    tenants = [
        TenantSpec(name="steady", model="m", rate_qps=40.0,
                   deadline_ms=200.0),
        TenantSpec(name="bursty", model="m", burst_every_s=1.0,
                   burst_size=120, deadline_ms=200.0),
    ]
    return generate_arrivals(tenants, seed=seed, total_queries=queries)


def autoscaled_sim_run(seed=11, cluster=False):
    guards = GuardRail(GuardConfig(
        workers_min=1, workers_max=6, cooldown_s=0.2,
    ))
    policy = AutoscalePolicy(
        slo_p99_ms=200.0, backlog_high=8.0, backlog_low=0.5,
        sustain_up=2, sustain_down=3,
    )
    controller = Controller(None, [policy], guards)
    if cluster:
        runner = ClusterSimRunner(
            [profile()], workers=2, controller=controller,
            control_interval_s=0.1,
        )
        controller.plant = ClusterSimPlant(runner)
    else:
        runner = SimRunner(
            [profile()], threads=2, controller=controller,
            control_interval_s=0.1,
        )
        controller.plant = SimPlant(runner)
    faults = FaultPlan(worker_crashes=(1.5,))
    report = runner.run(burst_arrivals(seed=seed), faults)
    return report, controller


class TestControllerConstruction:
    def test_needs_at_least_one_policy(self):
        with pytest.raises(ValidationError):
            Controller(None, [])

    def test_sim_runner_rejects_bad_interval(self):
        controller = Controller(
            None, [AutoscalePolicy()], GuardRail(),
        )
        with pytest.raises(ValidationError):
            SimRunner([profile()], threads=2, controller=controller,
                      control_interval_s=0.0)
        with pytest.raises(ValidationError):
            ClusterSimRunner([profile()], workers=2,
                             controller=controller,
                             control_interval_s=-1.0)


@pytest.mark.parametrize("cluster", [False, True],
                         ids=["threaded-sim", "cluster-sim"])
class TestDeterminism:
    def test_decision_log_byte_identical(self, cluster):
        first_report, first = autoscaled_sim_run(cluster=cluster)
        second_report, second = autoscaled_sim_run(cluster=cluster)
        assert json.dumps(first.decision_log) == json.dumps(
            second.decision_log
        )
        assert first_report.stats == second_report.stats
        # The run actually scaled: the burst forces at least one
        # guard-approved actuation.
        assert len(first.applied()) > 0

    def test_different_seeds_diverge(self, cluster):
        _, first = autoscaled_sim_run(seed=11, cluster=cluster)
        _, second = autoscaled_sim_run(seed=12, cluster=cluster)
        assert json.dumps(first.decision_log) != json.dumps(
            second.decision_log
        )

    def test_conservation_under_actuation(self, cluster):
        report, controller = autoscaled_sim_run(cluster=cluster)
        stats = report.stats
        assert stats.submitted == (
            stats.completed + stats.rejected + stats.failed
            + stats.cancelled
        )
        assert stats.completed > 0

    def test_audit_grammar(self, cluster, audit_grammar):
        _, controller = autoscaled_sim_run(cluster=cluster)
        audit_grammar(controller)
        assert controller.ticks > 0


class _AlwaysSwitch(Policy):
    name = "always_switch"

    def propose(self, snapshot):
        return [SwitchEngine(
            model="m", engine="tape", expected_fingerprint="fp",
            reason="test",
        )]


class _AlwaysScaleUp(Policy):
    name = "always_up"

    def propose(self, snapshot):
        return [ScaleWorkers(delta=1, reason="test")]


class TestApplyFailurePath:
    def test_mechanism_refusal_recorded_not_cooled_down(self, audit_grammar):
        """A guard-approved proposal the plant cannot apply becomes an
        ``apply_failed`` record and does NOT arm the cooldown."""
        guards = GuardRail(GuardConfig(
            cooldown_s=1e9, fingerprints={"m": "fp"},
        ))
        controller = Controller(None, [_AlwaysSwitch()], guards)
        runner = SimRunner(
            [profile()], threads=2, controller=controller,
            control_interval_s=0.1,
        )
        controller.plant = SimPlant(runner)
        arrivals = generate_arrivals(
            [TenantSpec(name="t", model="m", rate_qps=50.0)],
            seed=3, total_queries=50,
        )
        runner.run(arrivals)
        failures = [
            r for r in controller.decision_log if r[0] == "apply_failed"
        ]
        # Every tick retried (the huge cooldown never armed) and every
        # failure names the refusing plant.
        assert len(failures) >= 2
        assert all("SimPlant" in r[3] for r in failures)
        assert controller.applied() == []
        audit_grammar(controller)

    def test_guard_rejections_carry_reasons(self, audit_grammar):
        guards = GuardRail(GuardConfig(workers_min=1, workers_max=2))
        controller = Controller(None, [_AlwaysScaleUp()], guards)
        runner = SimRunner(
            [profile()], threads=2, controller=controller,
            control_interval_s=0.1,
        )
        controller.plant = SimPlant(runner)
        arrivals = generate_arrivals(
            [TenantSpec(name="t", model="m", rate_qps=50.0)],
            seed=3, total_queries=50,
        )
        runner.run(arrivals)
        rejections = controller.rejections()
        assert rejections, "the pool was already at workers_max"
        assert all("workers_max" in r[4] for r in rejections
                   if r[0] == "guard")
        audit_grammar(controller)


class TestMetricsAndTracing:
    def test_controller_emits_metrics_and_spans(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        metrics = MetricsRegistry()
        tracer = Tracer()
        guards = GuardRail(GuardConfig(
            workers_min=1, workers_max=6, cooldown_s=0.2,
        ))
        controller = Controller(
            None,
            [AutoscalePolicy(backlog_high=8.0, sustain_up=2)],
            guards, tracer=tracer, metrics=metrics,
        )
        runner = SimRunner(
            [profile()], threads=2, controller=controller,
            control_interval_s=0.1,
        )
        controller.plant = SimPlant(runner)
        runner.run(burst_arrivals())
        assert metrics.counter_value("control_ticks") == controller.ticks
        applied = sum(
            metrics.labeled_values("control_applied").values()
        ) if metrics.family("control_applied") else 0
        assert applied == len(controller.applied())
        spans = [
            s for s in tracer.spans() if s.name == "control_tick"
        ]
        assert len(spans) == controller.ticks
