"""The control plane over the real threaded service.

Exercises the production actuation seams end to end: a Controller with
scripted policies drives a live :class:`~repro.serve.CopseService`
through worker scaling, weight/admission retunes, and an engine flip —
and every query keeps decrypting to the oracle's bits throughout.
"""

import numpy as np
import pytest

from repro.control import (
    AdjustTenantWeight,
    Controller,
    GuardConfig,
    GuardRail,
    Policy,
    ScaleWorkers,
    ServicePlant,
    SetAdmissionLimit,
    SwitchEngine,
)
from repro.serve import CopseService


def queries_for(forest, count, seed=21, precision=8):
    rng = np.random.default_rng(seed)
    limit = 1 << precision
    return [
        [int(v) for v in rng.integers(0, limit, forest.n_features)]
        for _ in range(count)
    ]


class _Script(Policy):
    """Emit a fixed proposal list once, then go quiet."""

    name = "script"

    def __init__(self, proposals):
        self._pending = list(proposals)

    def propose(self, snapshot):
        out, self._pending = self._pending, []
        return out


class TestServicePlant:
    def test_observe_reads_live_metrics(self, example_forest):
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest, max_batch_size=4)
            service.classify_many("m", queries_for(example_forest, 4))
            snapshot = ServicePlant(service).observe(1.0)
        assert snapshot.live_workers == 2
        assert snapshot.submitted == 4
        assert snapshot.completed == 4
        assert [q.name for q in snapshot.queues] == ["m"]

    def test_scripted_actuations_end_to_end(self, example_forest):
        """Scale up, retune weight and admission, flip the engine — all
        through the controller, with oracle-exact serving after each."""
        with CopseService(threads=2, engine="eager") as service:
            registered = service.register_model(
                "m", example_forest, max_batch_size=4
            )
            fingerprint = registered.compiled.fingerprint()
            plant = ServicePlant(service)
            guards = GuardRail(GuardConfig(
                workers_min=1, workers_max=4, cooldown_s=0.0,
                fingerprints={"m": fingerprint},
            ))
            controller = Controller(
                plant,
                [_Script([
                    ScaleWorkers(delta=1, reason="warm up"),
                    AdjustTenantWeight(queue="m", weight=2.0,
                                       reason="boost"),
                    SetAdmissionLimit(queue="m", limit=64,
                                      reason="bound"),
                    SwitchEngine(model="m", engine="tape",
                                 expected_fingerprint=fingerprint,
                                 reason="flip"),
                ])],
                guards,
            )
            service.classify_many("m", queries_for(example_forest, 4))
            controller.tick(0.0)
            assert len(controller.applied()) == 4
            assert controller.rejections() == []
            assert service.workers == 3
            assert service.registry.get("m").engine == "tape"

            # Serving still decrypts to the oracle bits post-actuation.
            results = service.classify_many(
                "m", queries_for(example_forest, 5, seed=9)
            )
            assert all(r.oracle_ok for r in results)

            # The next snapshot reflects the actuated state.
            snapshot = plant.observe(1.0)
            assert snapshot.live_workers == 3
            assert snapshot.queue("m").weight == 2.0
            assert snapshot.queue("m").limit == 64

    def test_fingerprint_mismatch_never_reaches_the_registry(
        self, example_forest
    ):
        with CopseService(threads=2, engine="eager") as service:
            service.register_model("m", example_forest, max_batch_size=4)
            guards = GuardRail(GuardConfig(
                fingerprints={"m": "not-the-real-fingerprint"},
            ))
            controller = Controller(
                ServicePlant(service),
                [_Script([
                    SwitchEngine(model="m", engine="tape",
                                 expected_fingerprint="spoofed",
                                 reason="attack"),
                ])],
                guards,
            )
            service.classify_many("m", queries_for(example_forest, 2))
            controller.tick(0.0)
            assert controller.applied() == []
            rejection = controller.rejections()[0]
            assert "does not match" in rejection[4]
            assert service.registry.get("m").engine == "eager"

    def test_scale_down_via_controller(self, example_forest):
        with CopseService(threads=3) as service:
            service.register_model("m", example_forest, max_batch_size=4)
            service.classify_many("m", queries_for(example_forest, 2))
            controller = Controller(
                ServicePlant(service),
                [_Script([ScaleWorkers(delta=-1, reason="idle")])],
                GuardRail(GuardConfig(workers_min=1, workers_max=4)),
            )
            controller.tick(0.0)
            assert len(controller.applied()) == 1
            assert service.workers == 2
            # Still serving after the retire.
            results = service.classify_many(
                "m", queries_for(example_forest, 3, seed=5)
            )
            assert all(r.oracle_ok for r in results)
