"""Policy behavior: hysteresis, windowed signals, single-fire switches.

Policies are pure functions of the snapshot sequence they have seen —
each test drives one with hand-built snapshots and checks exactly when
(and what) it proposes.
"""

import pytest

from repro.control import (
    AdmissionReliefPolicy,
    AutoscalePolicy,
    DegradationPolicy,
    EngineDriftPolicy,
    ScaleWorkers,
    SwitchEngine,
    WeightBalancePolicy,
)
from repro.errors import ValidationError


class TestAutoscalePolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AutoscalePolicy(slo_p99_ms=0)
        with pytest.raises(ValidationError):
            AutoscalePolicy(backlog_high=1.0, backlog_low=2.0)
        with pytest.raises(ValidationError):
            AutoscalePolicy(sustain_up=0)
        with pytest.raises(ValidationError):
            AutoscalePolicy(step=0)

    def test_backlog_scale_up_needs_sustain(self, make_snapshot,
                                            make_queue):
        policy = AutoscalePolicy(backlog_high=4.0, sustain_up=2)
        hot = make_snapshot(
            live_workers=2,
            queues=[make_queue(name="q", depth=10)],
        )
        assert policy.propose(hot) == []  # one tick is noise
        proposals = policy.propose(hot)  # second consecutive tick fires
        assert len(proposals) == 1
        assert isinstance(proposals[0], ScaleWorkers)
        assert proposals[0].delta == 1
        assert "backlog" in proposals[0].reason
        # The counter reset after proposing: no double-fire.
        assert policy.propose(hot) == []

    def test_noisy_tick_resets_sustain(self, make_snapshot, make_queue):
        policy = AutoscalePolicy(backlog_high=4.0, sustain_up=2)
        hot = make_snapshot(
            live_workers=2, queues=[make_queue(name="q", depth=10)],
        )
        calm = make_snapshot(
            live_workers=2, queues=[make_queue(name="q", depth=2)],
        )
        assert policy.propose(hot) == []
        assert policy.propose(calm) == []
        assert policy.propose(hot) == []  # streak restarted

    def test_slo_gate_is_windowed_by_fresh_misses(self, make_snapshot,
                                                  make_queue):
        """Cumulative p99 above the SLO only counts while misses accrue.

        After a burst the latency histogram keeps its historical tail
        forever; without fresh deadline misses that must read as
        healthy, not as chronic overload."""
        policy = AutoscalePolicy(slo_p99_ms=100.0, sustain_up=1)
        queues = [make_queue(name="q", depth=0)]
        burst = make_snapshot(
            live_workers=2, latency_p99_ms=250.0, deadline_misses=5,
            queues=queues,
        )
        after = make_snapshot(
            live_workers=2, latency_p99_ms=250.0, deadline_misses=9,
            queues=queues,
        )
        calm = make_snapshot(
            live_workers=2, latency_p99_ms=250.0, deadline_misses=9,
            queues=queues,
        )
        assert policy.propose(burst) == []  # first tick has no window
        up = policy.propose(after)  # misses accrued: live overload
        assert len(up) == 1 and up[0].delta == 1
        assert "slo" in up[0].reason
        # Same elevated p99, but no new misses: not overload anymore.
        assert policy.propose(calm) == []

    def test_scale_down_needs_idle_and_quiet(self, make_snapshot,
                                             make_queue):
        policy = AutoscalePolicy(
            backlog_low=0.5, sustain_down=2, slo_p99_ms=100.0,
        )
        idle = make_snapshot(
            live_workers=3, free_workers=2, latency_p99_ms=250.0,
            deadline_misses=7,
            queues=[make_queue(name="q", depth=0)],
        )
        assert policy.propose(idle) == []
        down = policy.propose(idle)
        assert len(down) == 1 and down[0].delta == -1
        # No idle head-room: never propose a scale-down.
        busy = make_snapshot(
            live_workers=3, free_workers=0, deadline_misses=7,
            queues=[make_queue(name="q", depth=0)],
        )
        assert policy.propose(busy) == []
        assert policy.propose(busy) == []


class TestWeightBalancePolicy:
    def test_boosts_sustained_hot_queue_only(self, make_snapshot,
                                             make_queue):
        policy = WeightBalancePolicy(imbalance=2.0, boost=2.0, sustain=2)
        skewed = make_snapshot(queues=[
            make_queue(name="cold", depth=1, weight=1.0),
            make_queue(name="cool", depth=1, weight=1.0),
            make_queue(name="hot", depth=20, weight=1.0),
        ])
        assert policy.propose(skewed) == []
        proposals = policy.propose(skewed)
        assert len(proposals) == 1
        assert proposals[0].queue == "hot"
        assert proposals[0].weight == 2.0

    def test_balanced_queues_reset_streak(self, make_snapshot,
                                          make_queue):
        policy = WeightBalancePolicy(imbalance=2.0, sustain=2)
        skewed = make_snapshot(queues=[
            make_queue(name="a", depth=1), make_queue(name="b", depth=1),
            make_queue(name="c", depth=20),
        ])
        even = make_snapshot(queues=[
            make_queue(name="a", depth=5), make_queue(name="b", depth=5),
            make_queue(name="c", depth=5),
        ])
        assert policy.propose(skewed) == []
        assert policy.propose(even) == []
        assert policy.propose(skewed) == []  # streak restarted

    def test_capped_at_max_weight(self, make_snapshot, make_queue):
        policy = WeightBalancePolicy(
            imbalance=2.0, boost=2.0, sustain=1, max_weight=4.0,
        )
        at_cap = make_snapshot(queues=[
            make_queue(name="cold", depth=0, weight=1.0),
            make_queue(name="cool", depth=0, weight=1.0),
            make_queue(name="hot", depth=20, weight=4.0),
        ])
        assert policy.propose(at_cap) == []  # no headroom: no proposal


class TestAdmissionReliefPolicy:
    def test_doubles_bound_of_rejecting_queue(self, make_snapshot,
                                              make_queue):
        policy = AdmissionReliefPolicy(max_limit=64)
        before = make_snapshot(rejected=0, queues=[
            make_queue(name="q", depth=16, limit=16),
        ])
        after = make_snapshot(rejected=5, completed=100, queues=[
            make_queue(name="q", depth=16, limit=16),
        ])
        assert policy.propose(before) == []
        proposals = policy.propose(after)
        assert len(proposals) == 1
        assert proposals[0].queue == "q" and proposals[0].limit == 32

    def test_misses_veto_relief(self, make_snapshot, make_queue):
        # Latency is the failure mode: admitting more would hurt.
        policy = AdmissionReliefPolicy(miss_rate_ceiling=0.05)
        queues = [make_queue(name="q", depth=16, limit=16)]
        policy.propose(make_snapshot(rejected=0, queues=queues))
        missing = make_snapshot(
            rejected=5, completed=100, deadline_misses=20, queues=queues,
        )
        assert policy.propose(missing) == []

    def test_unbounded_queues_skipped(self, make_snapshot, make_queue):
        policy = AdmissionReliefPolicy()
        queues = [make_queue(name="q", depth=50, limit=None)]
        policy.propose(make_snapshot(rejected=0, queues=queues))
        assert policy.propose(
            make_snapshot(rejected=5, queues=queues)
        ) == []


class TestEngineDriftPolicy:
    def test_switches_once_after_sustained_drift(self, make_snapshot,
                                                 make_queue):
        policy = EngineDriftPolicy(
            watch={"m": (50.0, "plan", "fp")},
            drift_factor=1.5, sustain=2,
        )
        drifted = make_snapshot(queues=[
            make_queue(name="m", estimated_batch_ms=120.0),
        ])
        assert policy.propose(drifted) == []
        proposals = policy.propose(drifted)
        assert len(proposals) == 1
        switch = proposals[0]
        assert isinstance(switch, SwitchEngine)
        assert switch.model == "m" and switch.engine == "plan"
        assert switch.expected_fingerprint == "fp"
        # Single-fire: the model left the watch list.
        assert policy.propose(drifted) == []

    def test_recovery_resets_streak(self, make_snapshot, make_queue):
        policy = EngineDriftPolicy(
            watch={"m": (50.0, "plan", "fp")}, sustain=2,
        )
        drifted = make_snapshot(queues=[
            make_queue(name="m", estimated_batch_ms=120.0),
        ])
        fine = make_snapshot(queues=[
            make_queue(name="m", estimated_batch_ms=55.0),
        ])
        assert policy.propose(drifted) == []
        assert policy.propose(fine) == []
        assert policy.propose(drifted) == []  # streak restarted


class TestDegradationPolicy:
    def test_pins_lower_engine_after_sustained_fallbacks(
        self, make_snapshot
    ):
        policy = DegradationPolicy(
            watch={"m": ("megakernel", "fp")}, sustain=2,
        )
        # Tick 1 establishes the baseline count; accrual starts after.
        assert policy.propose(
            make_snapshot(degraded=[("m", 3)])
        ) == []  # count rose 0 -> 3: streak 1
        proposals = policy.propose(
            make_snapshot(degraded=[("m", 5)])
        )  # rose again: streak 2 fires
        assert len(proposals) == 1
        switch = proposals[0]
        assert isinstance(switch, SwitchEngine)
        assert switch.model == "m" and switch.engine == "tape"
        assert switch.expected_fingerprint == "fp"
        # Single-fire: the model left the watch list.
        assert policy.propose(
            make_snapshot(degraded=[("m", 9)])
        ) == []

    def test_stalled_count_resets_streak(self, make_snapshot):
        policy = DegradationPolicy(
            watch={"m": ("tape", "fp")}, sustain=2,
        )
        assert policy.propose(
            make_snapshot(degraded=[("m", 1)])
        ) == []
        # No new fallbacks this tick: the fast path recovered.
        assert policy.propose(
            make_snapshot(degraded=[("m", 1)])
        ) == []
        assert policy.propose(
            make_snapshot(degraded=[("m", 2)])
        ) == []  # streak restarted at 1

    def test_bottom_rung_is_unwatchable(self):
        with pytest.raises(ValidationError, match="lower"):
            DegradationPolicy(watch={"m": ("eager", "fp")})
        with pytest.raises(ValidationError, match="sustain"):
            DegradationPolicy(watch={"m": ("tape", "fp")}, sustain=0)
