"""Tests for the model registry (compile + encrypt exactly once)."""

import pytest

from repro.core.compiler import CopseCompiler
from repro.errors import ValidationError
from repro.fhe.params import EncryptionParams
from repro.serve.registry import ModelRegistry


class TestRegister:
    def test_registers_forest_and_caches_encryption(self, example_forest):
        registry = ModelRegistry()
        reg = registry.register("m", example_forest, precision=8)
        assert reg.batched_model.is_encrypted
        assert reg.setup_ms > 0  # the one-time encryption was charged
        assert reg.batch_capacity > 1
        assert reg.spec.n_features == example_forest.n_features
        assert registry.get("m") is reg
        assert "m" in registry and len(registry) == 1

    def test_accepts_compiled_model_and_keeps_forest(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        reg = ModelRegistry().register("m", compiled)
        assert reg.forest is example_forest  # via source_forest
        assert reg.compiled is compiled

    def test_rejects_wrong_type_and_empty_name(self, example_forest):
        registry = ModelRegistry()
        with pytest.raises(ValidationError):
            registry.register("m", object())
        with pytest.raises(ValidationError):
            registry.register("", example_forest)

    def test_duplicate_name_rejected(self, example_forest):
        registry = ModelRegistry()
        registry.register("m", example_forest)
        with pytest.raises(ValidationError):
            registry.register("m", example_forest)

    def test_backend_recorded_and_described(self, example_forest):
        reg = ModelRegistry().register("m", example_forest, backend="vector")
        assert reg.backend == "vector"
        assert "backend vector" in reg.describe()

    def test_backend_defaults_to_process_default(self, example_forest,
                                                 monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert ModelRegistry().register("m", example_forest).backend == (
            "reference"
        )
        monkeypatch.setenv("REPRO_BACKEND", "vector")
        assert ModelRegistry().register("m2", example_forest).backend == (
            "vector"
        )

    def test_unknown_backend_fails_before_compile(self, example_forest):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="unknown FHE backend"):
            ModelRegistry().register("m", example_forest, backend="helib")

    def test_unknown_lookup_names_known_models(self, example_forest):
        registry = ModelRegistry()
        registry.register("known", example_forest)
        with pytest.raises(ValidationError, match="known"):
            registry.get("missing")

    def test_unregister(self, example_forest):
        registry = ModelRegistry()
        registry.register("m", example_forest)
        registry.unregister("m")
        assert "m" not in registry

    def test_plaintext_model_option(self, example_forest):
        reg = ModelRegistry().register(
            "m", example_forest, encrypted_model=False
        )
        assert not reg.batched_model.is_encrypted

    def test_explicit_params_and_batch_cap(self, example_forest):
        params = EncryptionParams(security=128, bits=500, columns=3)
        reg = ModelRegistry().register(
            "m", example_forest, params=params, max_batch_size=2
        )
        assert reg.params == params
        assert reg.batch_capacity == 2

    def test_autoselect_params_feasible(self, example_forest):
        reg = ModelRegistry().register(
            "m", example_forest, autoselect_params=True
        )
        reg.compiled.check_parameters(reg.params)  # must not raise

    def test_default_params_from_registry(self, example_forest):
        params = EncryptionParams(security=128, bits=600, columns=3)
        registry = ModelRegistry(default_params=params)
        assert registry.register("m", example_forest).params == params


class TestFingerprintParity:
    """A cached plan refuses a different — even shape-identical — model,
    and does so *identically* under every FHE backend: the fail-closed
    check is backend-independent bookkeeping, not simulator behavior."""

    @staticmethod
    def shape_twin(forest):
        """A forest with identical compiled geometry but one different
        threshold — the hardest case for the fingerprint to catch."""
        from dataclasses import replace

        from repro.forest.forest import DecisionForest
        from repro.forest.node import Branch
        from repro.forest.tree import DecisionTree

        def bump(node):
            if isinstance(node, Branch):
                return Branch(
                    feature=node.feature,
                    threshold=node.threshold,
                    true_child=bump(node.true_child),
                    false_child=bump(node.false_child),
                )
            return node

        first = forest.trees[0]
        twin_root = bump(first.root)
        twin_root = replace(twin_root, threshold=twin_root.threshold + 1)
        trees = [DecisionTree(root=twin_root)] + list(forest.trees[1:])
        return DecisionForest(
            trees=trees,
            label_names=list(forest.label_names),
            n_features=forest.n_features,
        )

    def messages_for(self, backend, example_forest):
        from repro.errors import RuntimeProtocolError
        from repro.serve import CopseService

        twin = self.shape_twin(example_forest)
        with CopseService(threads=1, backend=backend) as service:
            a = service.register_model("a", example_forest)
            b = service.register_model("b", twin)
            assert a.compiled.fingerprint() != b.compiled.fingerprint()
            assert a.layout == b.layout  # genuinely shape-identical
            # Cross the wires: model a's cached plan, model b's bundle.
            a.batched_model = b.batched_model
            with pytest.raises(RuntimeProtocolError) as excinfo:
                service.classify("a", [40, 200])
            return str(excinfo.value)

    def test_mismatch_raised_identically_on_all_backends(
        self, example_forest
    ):
        reference = self.messages_for("reference", example_forest)
        vector = self.messages_for("vector", example_forest)
        assert "plan was lowered for model" in reference
        assert reference == vector


class TestPlanCache:
    def test_tape_compiled_and_cached_by_default(self, example_forest):
        reg = ModelRegistry().register("m", example_forest)
        assert reg.engine == "tape"
        assert reg.plan is not None
        assert reg.plan.batched
        assert reg.plan.batch_shape == (reg.layout.stride, reg.layout.capacity)
        assert reg.plan.encrypted_model
        assert reg.tape is not None
        assert reg.tape.batched
        assert reg.tape.batch_shape == reg.plan.batch_shape
        assert reg.tape.model_fingerprint == reg.plan.model_fingerprint
        # The tape's rotation schedule must not lose to the plan it was
        # compiled from.
        assert reg.tape.rotations <= reg.plan.optimized.rotations
        assert "plan[" in reg.describe()
        assert "tape[" in reg.describe()

    def test_plan_engine_skips_tape(self, example_forest):
        reg = ModelRegistry().register("m", example_forest, engine="plan")
        assert reg.engine == "plan"
        assert reg.plan is not None
        assert reg.tape is None

    def test_plan_optimizer_strictly_wins(self, example_forest):
        """The cached plan must show the optimizer's payoff: fewer
        rotations and fewer nodes than the naive lowering."""
        plan = ModelRegistry().register("m", example_forest).plan
        assert plan.optimized.rotations < plan.raw.rotations
        assert plan.optimized.num_nodes < plan.raw.num_nodes
        assert plan.optimized.depth <= plan.raw.depth
        assert plan.rotations_saved > 0

    def test_eager_engine_skips_plan(self, example_forest):
        reg = ModelRegistry().register("m", example_forest, engine="eager")
        assert reg.engine == "eager"
        assert reg.plan is None
        assert reg.tape is None

    def test_unknown_engine_rejected(self, example_forest):
        with pytest.raises(ValidationError, match="engine"):
            ModelRegistry().register("m", example_forest, engine="jit")

    def test_plaintext_model_plan_bakes_constants(self, example_forest):
        reg = ModelRegistry().register(
            "m", example_forest, encrypted_model=False
        )
        assert reg.plan is not None and not reg.plan.encrypted_model
        # Plaintext-model plans only bind the query (and the SecComp
        # all-ones helper) — the model itself is baked into the graph.
        assert all(
            name.startswith("feat_plane_") or name == "not_one"
            for name in reg.plan.input_names
        )
