"""End-to-end tests for the batched secure-inference service."""

import numpy as np
import pytest

from repro.errors import ServeError, ValidationError
from repro.serve import CopseService
from repro.serve.scheduler import Scheduler


def queries_for(forest, count, seed=21, precision=8):
    rng = np.random.default_rng(seed)
    limit = 1 << precision
    return [
        [int(v) for v in rng.integers(0, limit, forest.n_features)]
        for _ in range(count)
    ]


class TestRoundTrip:
    def test_batched_multithreaded_round_trip(self, example_forest):
        """The PR acceptance round trip: one registration, >= 8 queries,
        batch_size > 1, threads > 1, every result oracle-exact."""
        queries = queries_for(example_forest, 9)
        with CopseService(threads=3) as service:
            registered = service.register_model(
                "rt", example_forest, precision=8, max_batch_size=4
            )
            assert registered.batch_capacity == 4 > 1
            results = service.classify_many("rt", queries)
            stats = service.stats()

        assert len(results) == 9
        for features, res in zip(queries, results):
            assert res.oracle_ok is True
            assert res.bitvector == example_forest.label_bitvector(features)
            assert res.model == "rt"
            assert res.amortized_ms > 0
        # 9 queries across capacity-4 batches -> 3 batches (4+4+1).
        assert stats.queries == 9
        assert stats.batches == 3
        assert stats.oracle_failures == 0
        assert {r.batch_id for r in results} == {1, 2, 3}

    def test_results_keep_submission_order(self, example_forest):
        queries = queries_for(example_forest, 6, seed=5)
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest, max_batch_size=2)
            results = service.classify_many("m", queries)
        assert [r.features for r in results] == queries


class TestDispatchPolicy:
    def test_full_batches_dispatch_without_flush(self, example_forest):
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest, max_batch_size=2)
            futures = [
                service.submit("m", f) for f in queries_for(example_forest, 4)
            ]
            # Two full batches were cut; no flush needed for these.
            for future in futures:
                assert future.result(timeout=30).oracle_ok is True
            assert service.pending("m") == 0

    def test_partial_batch_waits_for_flush(self, example_forest):
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest, max_batch_size=4)
            future = service.submit("m", queries_for(example_forest, 1)[0])
            assert service.pending("m") == 1
            assert not future.done()
            service.flush("m")
            assert future.result(timeout=30).batch_fill == 1

    def test_classify_single_query(self, example_forest):
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest)
            res = service.classify("m", [40, 200])
            assert res.bitvector == example_forest.label_bitvector([40, 200])


class TestErrors:
    def test_unknown_model_rejected(self, example_forest):
        with CopseService() as service:
            with pytest.raises(ValidationError):
                service.submit("ghost", [1, 2])
            with pytest.raises(ValidationError):
                service.flush("ghost")

    def test_flush_unknown_name_does_not_flush_others(self, example_forest):
        """Regression: flush('typo') used to silently flush everything."""
        with CopseService(threads=1) as service:
            service.register_model("real", example_forest, max_batch_size=4)
            future = service.submit("real", [1, 2])
            with pytest.raises(ValidationError):
                service.flush("typo")
            assert not future.done()
            assert service.pending("real") == 1

    def test_bad_query_rejected_at_submit(self, example_forest):
        with CopseService() as service:
            service.register_model("m", example_forest)
            with pytest.raises(ValidationError):
                service.submit("m", [1])  # wrong arity
            with pytest.raises(ValidationError):
                service.submit("m", [0, 999])  # out of domain
            # Nothing poisoned the queue.
            assert service.pending("m") == 0

    def test_cancelled_future_does_not_poison_batch(self, example_forest):
        """Regression: a cancelled future used to abort result delivery
        for the other queries packed into the same batch."""
        from concurrent.futures import CancelledError

        queries = queries_for(example_forest, 3)
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest, max_batch_size=4)
            futures = [service.submit("m", f) for f in queries]
            assert futures[1].cancel()
            service.flush("m")
            assert futures[0].result(timeout=30).oracle_ok is True
            assert futures[2].result(timeout=30).oracle_ok is True
            with pytest.raises(CancelledError):
                futures[1].result(timeout=30)
            stats = service.stats()
        assert stats.queries == 2  # the cancelled slot was never packed
        assert futures[0].result().batch_fill == 2

    def test_unregistered_model_stops_serving(self, example_forest):
        """Regression: registry.unregister left a stale servable batcher."""
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest)
            service.registry.unregister("m")
            with pytest.raises(ValidationError):
                service.submit("m", [1, 2])
            # flush() prunes the stale mirror, releasing the cached model.
            service.flush()
            assert "m" not in service._batchers

    def test_unregister_model_releases_batcher(self, example_forest):
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest)
            service.unregister_model("m")
            assert "m" not in service._batchers
            with pytest.raises(ValidationError):
                service.submit("m", [1, 2])

    def test_submit_after_close_rejected(self, example_forest):
        service = CopseService()
        service.register_model("m", example_forest)
        service.close()
        with pytest.raises(ServeError, match="closed"):
            service.submit("m", [1, 2])

    def test_service_close_is_idempotent(self, example_forest):
        service = CopseService()
        service.register_model("m", example_forest)
        future = service.submit("m", [1, 2])
        service.close()  # flushes the partial batch
        assert future.result(timeout=30).oracle_ok is True
        service.close()  # second close is a no-op
        service.close()


class TestFlushAndWidthEdgeCases:
    def test_flush_empty_queue_is_noop(self, example_forest):
        """Regression: flushing with nothing pending must not dispatch
        an empty batch, hang, or disturb stats."""
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest)
            service.flush("m")
            service.flush()
            service.flush("m")
            stats = service.stats()
        assert stats.batches == 0
        assert stats.queries == 0
        assert stats.scheduler.submitted == 0

    def test_flush_empty_then_serve_still_works(self, example_forest):
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest)
            service.flush("m")
            result = service.classify("m", [40, 200])
            assert result.oracle_ok is True

    def test_query_wider_than_slots_rejected_at_submit(self, example_forest):
        """A layout whose per-query block exceeds the ciphertext width
        (only constructible by hand) fails at submit time with the width
        and the limit in the message — not deep inside evaluation."""
        import dataclasses

        from repro.serve.batcher import QueryBatcher

        with CopseService(threads=1) as service:
            registered = service.register_model("m", example_forest)
            slots = registered.params.slot_count
            registered.layout = dataclasses.replace(
                registered.layout, stride=slots + 17
            )
            batcher = QueryBatcher(registered)
            with pytest.raises(ValidationError) as excinfo:
                batcher.prepare([1, 2])
            message = str(excinfo.value)
            assert str(slots + 17) in message  # the offending width
            assert str(slots) in message  # the limit


class TestSchedulingFeatures:
    def test_rejected_query_when_bounded_queue_full(self, example_forest):
        from repro.errors import RejectedQuery

        with CopseService(threads=1, max_queue=2) as service:
            service.register_model("m", example_forest, max_batch_size=8)
            service.submit("m", [1, 2])
            service.submit("m", [3, 4])
            with pytest.raises(RejectedQuery) as excinfo:
                service.submit("m", [5, 6], tenant="alice")
            assert excinfo.value.model == "m"
            assert excinfo.value.tenant == "alice"
            service.flush("m")
            stats = service.stats()
        assert stats.scheduler.rejected == 1
        assert stats.scheduler.completed == 2

    def test_per_model_max_queue_overrides_service_default(
        self, example_forest
    ):
        from repro.errors import RejectedQuery

        with CopseService(threads=1, max_queue=1) as service:
            service.register_model(
                "roomy", example_forest, max_batch_size=8, max_queue=4
            )
            for features in ([1, 2], [3, 4], [5, 6], [7, 8]):
                service.submit("roomy", features)
            with pytest.raises(RejectedQuery):
                service.submit("roomy", [9, 10])
            service.flush()

    def test_deadline_forces_partial_dispatch_without_flush(
        self, example_forest
    ):
        """A deadline-bearing query in a partial batch is served by the
        slack cut alone — no flush, no batch-filling traffic."""
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest, max_batch_size=8)
            future = service.submit("m", [40, 200], deadline_ms=50.0)
            result = future.result(timeout=30)
            assert result.oracle_ok is True
            assert result.batch_fill == 1

    def test_tenants_and_misses_reported_in_stats(self, example_forest):
        with CopseService(threads=2) as service:
            service.register_model("m", example_forest, max_batch_size=4)
            for i in range(4):
                service.submit(
                    "m", [i, i], tenant="a" if i % 2 else "b",
                    deadline_ms=10_000.0,
                )
            service.flush("m")
            stats = service.stats()
        assert stats.scheduler.per_tenant_completed == {"a": 2, "b": 2}
        assert stats.deadline_miss_rate == 0.0
        assert "scheduling:" in stats.render()


class TestStats:
    @pytest.mark.parametrize("engine", ["plan", "eager"])
    def test_amortized_cost_and_fill(self, example_forest, engine):
        with CopseService(threads=2, engine=engine) as service:
            service.register_model("m", example_forest, max_batch_size=3)
            service.classify_many("m", queries_for(example_forest, 6))
            stats = service.stats()
        assert stats.queries == 6
        assert stats.batches == 2
        assert stats.avg_batch_fill == pytest.approx(1.0)
        assert stats.amortized_ms_per_query > 0
        assert stats.throughput_qps > 0
        assert stats.setup_ms > 0
        if engine == "plan":
            # The whole optimized pipeline records under one phase.
            assert stats.phase_ms["plan_inference"] > 0
            assert stats.plan_ms > 0 and stats.eager_ms == 0
            assert stats.plan_op_counts["multiply"] > 0
            assert stats.eager_op_counts == {}
        else:
            for phase in ("comparison", "reshuffle", "levels", "accumulate"):
                assert stats.phase_ms[phase] > 0
            assert stats.eager_ms > 0 and stats.plan_ms == 0
            assert stats.eager_op_counts["multiply"] > 0
            assert stats.plan_op_counts == {}
        assert stats.op_counts["multiply"] > 0
        assert "CopseService stats" in stats.render()

    def test_tape_engine_is_default_and_cheapest(self, example_forest):
        """The registry default is the compiled-tape engine; on the same
        queries it does strictly less simulated inference work than the
        plan engine, which does strictly less than eager."""

        def run(engine):
            with CopseService(threads=1, engine=engine) as service:
                registered = service.register_model(
                    "m", example_forest, max_batch_size=2
                )
                service.classify_many("m", queries_for(example_forest, 4))
                return registered, service.stats()

        default_service = CopseService(threads=1)
        try:
            assert default_service.engine == "tape"
        finally:
            default_service.close()

        tape_reg, tape_stats = run("tape")
        plan_reg, plan_stats = run("plan")
        eager_reg, eager_stats = run("eager")
        assert tape_reg.engine == "tape" and tape_reg.tape is not None
        assert plan_reg.engine == "plan" and plan_reg.plan is not None
        assert plan_reg.tape is None
        assert eager_reg.engine == "eager" and eager_reg.plan is None
        assert tape_stats.oracle_failures == 0
        assert plan_stats.oracle_failures == 0
        assert eager_stats.oracle_failures == 0
        assert tape_stats.tape_ms > 0 and tape_stats.plan_ms == 0
        assert tape_stats.tape_op_counts["multiply"] > 0
        assert tape_stats.inference_ms < plan_stats.inference_ms
        assert plan_stats.inference_ms < eager_stats.inference_ms

    def test_oracle_failures_counted_per_query(self, example_forest):
        """Regression: a bad batch used to count as one failure."""

        class WrongOracle:
            def __init__(self, forest):
                self._forest = forest

            def label_bitvector(self, features):
                real = self._forest.label_bitvector(features)
                return [1 - b for b in real]  # always disagrees

        with CopseService(threads=1) as service:
            registered = service.register_model(
                "m", example_forest, max_batch_size=3
            )
            registered.forest = WrongOracle(example_forest)
            results = service.classify_many(
                "m", queries_for(example_forest, 3)
            )
            stats = service.stats()
        assert all(r.oracle_ok is False for r in results)
        assert stats.batches == 1
        assert stats.oracle_failures == 3  # one per query, not per batch

    def test_qps_accounts_for_remainder_round(self, example_forest):
        """3 batches on 2 workers take 2 rounds, not 1.5."""
        from repro.serve import ServiceStats

        stats = ServiceStats(
            queries=6, batches=3, capacity_total=6, phase_ms={},
            op_counts={}, inference_ms=300.0, data_encrypt_ms=0.0,
            setup_ms=0.0, oracle_failures=0, threads=2,
        )
        # makespan = ceil(3/2) rounds * 100 ms/batch = 200 ms.
        assert stats.throughput_qps == pytest.approx(6 * 1000.0 / 200.0)
        single = ServiceStats(
            queries=4, batches=1, capacity_total=4, phase_ms={},
            op_counts={}, inference_ms=100.0, data_encrypt_ms=0.0,
            setup_ms=0.0, oracle_failures=0, threads=4,
        )
        assert single.throughput_qps == pytest.approx(40.0)  # no 4x claim

    def test_plaintext_model_cheaper_than_encrypted(self, example_forest):
        def run(encrypted):
            with CopseService(threads=1) as service:
                service.register_model(
                    "m", example_forest, encrypted_model=encrypted,
                    max_batch_size=2,
                )
                service.classify_many("m", queries_for(example_forest, 2))
                return service.stats().amortized_ms_per_query

        assert run(False) < run(True)


class TestScheduler:
    # The scheduler's own behaviors (deadline cuts, fair sharing,
    # admission, retries, lifecycle) live in test_scheduler.py and
    # test_simulation.py; here we only keep the service-facing basics.

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValidationError):
            Scheduler(threads=0)

    def test_failed_batch_does_not_kill_worker(self, example_forest):
        """An evaluation failure fails its own queries and nothing else."""
        with CopseService(threads=1) as service:
            service.register_model("m", example_forest, max_batch_size=2)
            # Sabotage the cached model so evaluation raises.
            broken = service.registry.get("m")
            real_model = broken.batched_model
            broken.batched_model = None
            bad = service.submit("m", [1, 2])
            service.flush("m")
            with pytest.raises(Exception):
                bad.result(timeout=30)
            # The worker survived: restore the model and serve again.
            broken.batched_model = real_model
            ok = service.submit("m", [1, 2])
            service.flush("m")
            assert ok.result(timeout=30).oracle_ok is True
            stats = service.stats()
        assert stats.scheduler.failed == 1
        assert stats.scheduler.completed == 1
