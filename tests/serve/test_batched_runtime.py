"""Tests for block-local gathers and the batched Algorithm 1."""

import numpy as np
import pytest

from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.core.seccomp import VARIANT_OPTIMIZED
from repro.errors import RuntimeProtocolError
from repro.fhe.context import FheContext
from repro.fhe.tracker import OpKind
from repro.serve.batched_runtime import (
    BatchedCopseServer,
    PHASE_MODEL_CACHE,
    batched_matvec,
    block_gather,
    build_batched_model,
    encrypt_batch,
)
from repro.serve.packing import (
    BatchLayout,
    demux_bitvectors,
    plan_layout,
    tile_model_vector,
)


def make_layout(stride=7, capacity=4, width=5):
    """A synthetic layout whose every stage width equals ``width``."""
    return BatchLayout(
        stride=stride,
        capacity=capacity,
        precision=4,
        n_features=1,
        max_multiplicity=1,
        quantized_branching=width,
        branching=width,
        num_labels=width,
    )


class TestBlockGather:
    @pytest.mark.parametrize("shift", [0, 1, 3, 4])
    @pytest.mark.parametrize("rows", [3, 5, 7])
    def test_matches_reference(self, ctx, keys, shift, rows):
        layout = make_layout()
        width = 5
        rng = np.random.default_rng(shift * 10 + rows)
        data = rng.integers(0, 2, layout.batched_width).astype(np.uint8)
        ct = ctx.encrypt(data, keys.public)
        out = block_gather(ctx, ct, shift, width, rows, layout)
        got = ctx.decrypt(out, keys.secret)
        for k in range(layout.capacity):
            for t in range(rows):
                expected = data[k * layout.stride + (t + shift) % width]
                assert got[k * layout.stride + t] == expected, (k, t)

    def test_zero_shift_small_rows_is_free(self, ctx, keys):
        layout = make_layout()
        data = np.ones(layout.batched_width, dtype=np.uint8)
        ct = ctx.encrypt(data, keys.public)
        before = ctx.tracker.num_nodes
        out = block_gather(ctx, ct, 0, 5, 5, layout)
        assert out is ct  # single zero-rotation segment: no ops recorded
        assert ctx.tracker.num_nodes == before

    def test_never_bleeds_across_blocks(self, ctx, keys):
        """Block k's gather must see only block k's data."""
        layout = make_layout()
        data = np.zeros(layout.batched_width, dtype=np.uint8)
        data[layout.block_slice(1)] = 1  # only block 1 is hot
        ct = ctx.encrypt(data, keys.public)
        for shift in range(5):
            got = ctx.decrypt(
                block_gather(ctx, ct, shift, 5, 7, layout), keys.secret
            )
            for k in range(layout.capacity):
                block = got[k * layout.stride : k * layout.stride + 7]
                assert block.any() == (k == 1), (shift, k)

    def test_rejects_bad_shapes(self, ctx, keys):
        layout = make_layout()
        ct = ctx.encrypt(
            np.zeros(layout.batched_width, dtype=np.uint8), keys.public
        )
        with pytest.raises(RuntimeProtocolError):
            block_gather(ctx, ct, 5, 5, 5, layout)  # shift >= width
        with pytest.raises(RuntimeProtocolError):
            block_gather(ctx, ct, 0, 5, layout.stride + 1, layout)


class TestBatchedMatvec:
    def test_matches_per_block_dense_product(self, ctx, keys, compiled_example):
        """Each block's result equals the plain diagonal-matrix product."""
        layout = plan_layout(compiled_example, ctx.params, max_batch_size=3)
        matrix = compiled_example.reshuffle
        diagonals = [
            ctx.encode(tile_model_vector(layout, matrix.diagonal(i)))
            for i in range(matrix.num_diagonals)
        ]
        rng = np.random.default_rng(9)
        data = np.zeros(layout.batched_width, dtype=np.uint8)
        per_block = []
        for k in range(layout.capacity):
            v = rng.integers(0, 2, matrix.cols).astype(np.uint8)
            per_block.append(v)
            data[k * layout.stride : k * layout.stride + matrix.cols] = v
        ct = ctx.encrypt(data, keys.public)
        out = batched_matvec(
            ctx, diagonals, matrix.rows, matrix.cols, ct, layout
        )
        got = ctx.decrypt(out, keys.secret)
        for k in range(layout.capacity):
            expected = matrix.matvec_plain(per_block[k])
            block = got[k * layout.stride : k * layout.stride + matrix.rows]
            assert np.array_equal(block, expected), k


class TestClassifyBatch:
    @pytest.fixture
    def layout(self, compiled_example, params):
        return plan_layout(compiled_example, params, max_batch_size=4)

    def _queries(self, forest, count, seed=3):
        rng = np.random.default_rng(seed)
        return [
            [int(v) for v in rng.integers(0, 256, forest.n_features)]
            for _ in range(count)
        ]

    def test_every_block_matches_oracle(
        self, example_forest, compiled_example, layout, params
    ):
        ctx = FheContext(params)
        keys = ctx.keygen()
        model = build_batched_model(ctx, compiled_example, layout, keys.public)
        queries = self._queries(example_forest, 4)
        query = encrypt_batch(ctx, layout, queries, keys)
        server = BatchedCopseServer(ctx)
        bits = ctx.decrypt_bits(
            server.classify_batch(model, query), keys.secret
        )
        for features, got in zip(
            queries, demux_bitvectors(layout, bits, len(queries))
        ):
            assert got == example_forest.label_bitvector(features)

    def test_partial_batch_and_plaintext_model(
        self, example_forest, compiled_example, layout, params
    ):
        ctx = FheContext(params)
        keys = ctx.keygen()
        model = build_batched_model(ctx, compiled_example, layout)  # plaintext
        assert not model.is_encrypted
        queries = self._queries(example_forest, 2, seed=11)
        query = encrypt_batch(ctx, layout, queries, keys)
        server = BatchedCopseServer(ctx, seccomp_variant=VARIANT_OPTIMIZED)
        bits = ctx.decrypt_bits(
            server.classify_batch(model, query), keys.secret
        )
        for features, got in zip(
            queries, demux_bitvectors(layout, bits, len(queries))
        ):
            assert got == example_forest.label_bitvector(features)

    def test_depth_matches_single_query_circuit(
        self, example_forest, compiled_example, layout, params
    ):
        """Gathers add no ciphertext multiply: batched depth == unbatched."""
        single = secure_inference(
            compiled_example, [40, 200], params=params
        )
        ctx = FheContext(params)
        keys = ctx.keygen()
        model = build_batched_model(ctx, compiled_example, layout, keys.public)
        query = encrypt_batch(ctx, layout, [[40, 200]], keys)
        BatchedCopseServer(ctx).classify_batch(model, query)
        assert (
            ctx.tracker.multiplicative_depth()
            == single.tracker.multiplicative_depth()
        )

    def test_adoption_is_free_and_scoped(
        self, compiled_example, layout, params
    ):
        registry_ctx = FheContext(params)
        keys = registry_ctx.keygen()
        model = build_batched_model(
            registry_ctx, compiled_example, layout, keys.public
        )
        batch_ctx = FheContext(params)
        local = model.adopt_into(batch_ctx)
        stats = batch_ctx.tracker.phase_stats(PHASE_MODEL_CACHE)
        assert stats.count(OpKind.LOAD) == stats.total_ops > 0
        assert batch_ctx.tracker.count(OpKind.ENCRYPT) == 0
        # Adopted ciphertexts keep key identity.
        assert local.threshold_planes[0].key_id == keys.public.key_id

    def test_adoption_rejects_oversized_ciphertext(
        self, compiled_example, layout, params
    ):
        """adopt() enforces the target context's slot capacity."""
        from repro.errors import SlotCapacityError
        from repro.fhe.params import EncryptionParams

        registry_ctx = FheContext(params)
        keys = registry_ctx.keygen()
        full = plan_layout(compiled_example, params)  # uncapped capacity
        model = build_batched_model(
            registry_ctx, compiled_example, full, keys.public
        )
        tiny_ctx = FheContext(EncryptionParams(columns=1))  # 320 slots
        assert model.threshold_planes[0].length > 320
        with pytest.raises(SlotCapacityError):
            model.adopt_into(tiny_ctx)

    def test_width_mismatch_rejected(
        self, example_forest, compiled_example, layout, params
    ):
        ctx = FheContext(params)
        keys = ctx.keygen()
        model = build_batched_model(ctx, compiled_example, layout, keys.public)
        small = plan_layout(compiled_example, params, max_batch_size=2)
        query = encrypt_batch(ctx, small, [[1, 2]], keys)
        with pytest.raises(RuntimeProtocolError):
            BatchedCopseServer(ctx).classify_batch(model, query)


class TestBulkAdoption:
    """The vector backend's ``adopt_many`` capability must be invisible:
    bulk adoption and per-ciphertext adoption leave identical tracker
    state, node ids, and key identity — including on refusal."""

    @pytest.fixture
    def layout(self, compiled_example, params):
        return plan_layout(compiled_example, params, max_batch_size=4)

    def _flatten(self, model):
        planes = list(model.threshold_planes)
        planes += list(model.reshuffle_diagonals)
        for level in model.level_diagonals:
            planes += list(level)
        planes += list(model.level_masks)
        return planes

    def _contexts(self, params):
        from repro.fhe.vector import VectorFheContext

        class NoBulk(VectorFheContext):
            adopt_many = None  # hide the capability: per-ct fallback

        return VectorFheContext(params), NoBulk(params)

    def test_bulk_matches_per_ciphertext(
        self, compiled_example, layout, params
    ):
        registry_ctx = FheContext(params, backend="vector")
        keys = registry_ctx.keygen()
        model = build_batched_model(
            registry_ctx, compiled_example, layout, keys.public
        )
        bulk_ctx, slow_ctx = self._contexts(params)
        bulk = model.adopt_into(bulk_ctx)
        slow = model.adopt_into(slow_ctx)
        assert (
            bulk_ctx.tracker.phase_stats(PHASE_MODEL_CACHE).as_dict()
            == slow_ctx.tracker.phase_stats(PHASE_MODEL_CACHE).as_dict()
        )
        for got, want in zip(self._flatten(bulk), self._flatten(slow)):
            assert type(got) is type(want)
            if hasattr(got, "node_id"):
                assert got.node_id == want.node_id == 0
                assert got.key_id == want.key_id
                assert got.length == want.length
                assert np.array_equal(got._slots, want._slots)

    def test_bulk_refusal_matches_per_ciphertext(
        self, compiled_example, params
    ):
        """Oversized planes refuse with the same error and the same
        partial LOAD counts on both adoption paths."""
        from repro.errors import SlotCapacityError
        from repro.fhe.params import EncryptionParams

        registry_ctx = FheContext(params, backend="vector")
        keys = registry_ctx.keygen()
        full = plan_layout(compiled_example, params)  # uncapped capacity
        model = build_batched_model(
            registry_ctx, compiled_example, full, keys.public
        )
        tiny = EncryptionParams(columns=1)  # 320 slots
        assert model.threshold_planes[0].length > 320
        bulk_ctx, slow_ctx = self._contexts(tiny)
        with pytest.raises(SlotCapacityError) as bulk_err:
            model.adopt_into(bulk_ctx)
        with pytest.raises(SlotCapacityError) as slow_err:
            model.adopt_into(slow_ctx)
        assert str(bulk_err.value) == str(slow_err.value)
        assert (
            bulk_ctx.tracker.phase_stats(PHASE_MODEL_CACHE).as_dict()
            == slow_ctx.tracker.phase_stats(PHASE_MODEL_CACHE).as_dict()
        )
