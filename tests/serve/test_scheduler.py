"""Unit tests for the deadline-aware scheduler (core + threaded engine).

The decision core is exercised directly under a
:class:`~repro.serve.simclock.VirtualClock`-style explicit ``now`` — no
threads, no sleeps, fully deterministic.  The threaded engine's tests
stick to lifecycle (close/idempotence/submit-after-close) and use
generous timeouts on futures, never wall-clock assertions.
"""

from concurrent.futures import Future

import pytest

from repro.errors import RejectedQuery, ServeError, ValidationError
from repro.serve.scheduler import (
    OUTCOME_CRASH,
    OUTCOME_ERROR,
    OUTCOME_OK,
    Scheduler,
    SchedulerCore,
    _percentile,
    deliver_failures,
)
from repro.serve.simclock import RealClock, VirtualClock


class Payload:
    """Minimal scheduler payload (the batcher's PendingQuery stand-in)."""

    def __init__(self):
        self.future = Future()


def submit_n(core, queue, n, now=0.0, tenant="t", deadline=None, priority=0):
    return [
        core.submit(
            queue, Payload(), now, tenant=tenant, deadline=deadline,
            priority=priority,
        )
        for _ in range(n)
    ]


class TestAdmission:
    def test_bounded_queue_rejects_with_context(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4, max_pending=2)
        submit_n(core, "m", 2)
        with pytest.raises(RejectedQuery) as excinfo:
            core.submit("m", Payload(), 0.0, tenant="alice")
        err = excinfo.value
        assert err.model == "m" and err.tenant == "alice"
        assert err.queue_depth == 2 and err.limit == 2
        assert "2/2" in str(err)
        stats = core.stats()
        assert stats.rejected == 1 and stats.submitted == 3

    def test_unbounded_queue_never_rejects(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4)
        submit_n(core, "m", 100)
        assert core.stats().rejected == 0

    def test_unknown_queue_names_known_ones(self):
        core = SchedulerCore(workers=1)
        core.add_queue("real", capacity=1)
        with pytest.raises(ValidationError, match="real"):
            core.submit("ghost", Payload(), 0.0)

    def test_flush_unknown_queue_raises_validation_error(self):
        """Regression: flush('typo') used to escape as a raw KeyError
        instead of the hierarchy error submit() raises."""
        core = SchedulerCore(workers=1)
        core.add_queue("real", capacity=1)
        with pytest.raises(ValidationError, match="real"):
            core.flush("ghost")

    def test_bad_queue_config_rejected(self):
        core = SchedulerCore(workers=1)
        with pytest.raises(ValidationError, match="capacity"):
            core.add_queue("m", capacity=0)
        with pytest.raises(ValidationError, match="weight"):
            core.add_queue("m", capacity=1, weight=0.0)
        with pytest.raises(ValidationError, match="max_pending"):
            core.add_queue("m", capacity=1, max_pending=0)
        core.add_queue("m", capacity=1)
        with pytest.raises(ValidationError, match="already"):
            core.add_queue("m", capacity=1)


class TestBatchCutting:
    def test_full_batch_is_ready_immediately(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=3)
        submit_n(core, "m", 2)
        assert not core.has_ready(0.0)
        submit_n(core, "m", 1)
        assert core.has_ready(0.0)
        assignment = core.assign(0.0)
        assert assignment.size == 3

    def test_partial_batch_waits_without_deadline(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4)
        submit_n(core, "m", 2)
        assert core.assign(0.0) is None
        core.flush("m")
        assert core.assign(0.0).size == 2

    def test_slack_cut_fires_at_deadline_minus_service(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=8, service_ms=100.0)
        core.submit("m", Payload(), 0.0, deadline=0.5)
        # Slack runs out at 0.5 s - 0.1 s = 0.4 s, not at the deadline.
        assert core.next_cut_time() == pytest.approx(0.4)
        assert core.assign(0.39) is None
        assignment = core.assign(0.4)
        assert assignment is not None and assignment.size == 1

    def test_cut_takes_earliest_deadline_across_queue(self):
        """Interleaved reads exercise the O(1) incremental cut-cache
        update: each push must advance the cached frontier without a
        rescan, and a later pop must force the rescan."""
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=8, service_ms=0.0)
        core.submit("m", Payload(), 0.0, deadline=2.0)
        assert core.next_cut_time() == pytest.approx(2.0)  # cache clean
        core.submit("m", Payload(), 0.0, deadline=1.0)
        assert core.next_cut_time() == pytest.approx(1.0)  # incremental
        core.submit("m", Payload(), 0.0, deadline=3.0)
        assert core.next_cut_time() == pytest.approx(1.0)  # no regress
        assignment = core.assign(1.0)  # pops everything (capacity 8)
        assert assignment.size == 3
        assert core.next_cut_time() is None  # rescan after the pop

    def test_observed_service_time_refines_slack_cuts(self):
        """The service estimate is only *seeded* by the caller (the
        plan's simulated cost, which is not wall time); completed-batch
        durations fold in via EWMA so later slack cuts use reality.
        Regression for wall-deadline-vs-simulated-cost unit mixing."""
        core = SchedulerCore(workers=1)
        # Wildly pessimistic seed: 10 s per batch.
        core.add_queue("m", capacity=8, service_ms=10_000.0)
        core.submit("m", Payload(), 0.0, deadline=1.0)
        # Seeded estimate says the cut is already overdue.
        assert core.next_cut_time() == pytest.approx(1.0 - 10.0)
        assignment = core.assign(0.0)
        core.complete(assignment, 0.05, OUTCOME_OK)  # actually 50 ms
        # One observation pulls the estimate far toward reality
        # (EWMA 0.3): 10 + 0.3*(0.05-10) = 7.015 s, and each further
        # batch converges geometrically.
        core.submit("m", Payload(), 0.1, deadline=10.0)
        assert core.next_cut_time() == pytest.approx(10.0 - 7.015)
        second = core.assign(10.0 - 7.015)
        core.complete(second, 10.0 - 7.015 + 0.05, OUTCOME_OK)
        third_estimate = 7.015 + 0.3 * (0.05 - 7.015)
        core.submit("m", Payload(), 5.0, deadline=10.0)
        assert core.next_cut_time() == pytest.approx(10.0 - third_estimate)

    def test_flush_on_empty_queue_is_noop(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4)
        core.flush("m")
        core.flush()
        assert not core.has_ready(0.0)
        assert core.assign(0.0) is None
        # The flag must not linger: a later submit is not auto-flushed.
        submit_n(core, "m", 1)
        assert core.assign(0.0) is None

    def test_priority_orders_within_queue_fifo_within_level(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4)
        low = submit_n(core, "m", 2, priority=0)
        high = submit_n(core, "m", 2, priority=5)
        core.flush("m")
        assignment = core.assign(0.0)
        assert [t.seq for t in assignment.tickets] == [
            high[0].seq, high[1].seq, low[0].seq, low[1].seq,
        ]

    def test_cancelled_tickets_never_occupy_slots(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=2)
        tickets = submit_n(core, "m", 3)
        assert tickets[0].future.cancel()
        assignment = core.assign(0.0)
        assert [t.seq for t in assignment.tickets] == [
            tickets[1].seq, tickets[2].seq,
        ]
        assert core.stats().cancelled == 1


class TestFairSharing:
    def test_weighted_round_robin_between_hot_queues(self):
        core = SchedulerCore(workers=1)
        core.add_queue("a", capacity=1, weight=1.0)
        core.add_queue("b", capacity=1, weight=3.0)
        submit_n(core, "a", 8)
        submit_n(core, "b", 8)
        served = []
        for _ in range(8):
            assignment = core.assign(0.0)
            served.append(assignment.queue)
            core.complete(assignment, 0.0, OUTCOME_OK)
        # Weight 3 queue gets ~3 of every 4 dispatches.
        assert served.count("b") == 6 and served.count("a") == 2

    def test_hot_queue_cannot_starve_cold_one(self):
        core = SchedulerCore(workers=1)
        core.add_queue("hot", capacity=2, weight=1.0)
        core.add_queue("cold", capacity=2, weight=1.0)
        submit_n(core, "hot", 40)
        submit_n(core, "cold", 2)
        served = []
        for _ in range(5):
            assignment = core.assign(0.0)
            served.append(assignment.queue)
            core.complete(assignment, 0.0, OUTCOME_OK)
        assert "cold" in served[:2]  # served long before hot drains

    def test_late_joiner_does_not_replay_missed_service(self):
        core = SchedulerCore(workers=1)
        core.add_queue("old", capacity=1)
        submit_n(core, "old", 10)
        for _ in range(5):
            assignment = core.assign(0.0)
            core.complete(assignment, 0.0, OUTCOME_OK)
        core.add_queue("new", capacity=1)
        submit_n(core, "new", 10)
        served = []
        for _ in range(6):
            assignment = core.assign(0.0)
            served.append(assignment.queue)
            core.complete(assignment, 0.0, OUTCOME_OK)
        # Alternates instead of the newcomer monopolizing the worker.
        assert served.count("old") == 3 and served.count("new") == 3


class TestCompletionAccounting:
    def test_latency_and_deadline_miss_counted(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=2)
        core.submit("m", Payload(), 0.0, deadline=0.25)
        core.submit("m", Payload(), 0.0, deadline=2.0)
        assignment = core.assign(0.0)
        core.complete(assignment, 0.5, OUTCOME_OK)
        stats = core.stats()
        assert stats.completed == 2
        assert stats.deadline_misses == 1
        assert stats.deadline_miss_rate == pytest.approx(0.5)
        assert stats.latency_p50_ms == pytest.approx(500.0)

    def test_error_outcome_fails_tickets(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=2)
        tickets = submit_n(core, "m", 2)
        core.flush("m")
        assignment = core.assign(0.0)
        core.complete(assignment, 0.1, OUTCOME_ERROR)
        stats = core.stats()
        assert stats.failed == 2 and stats.completed == 0
        # Delivery is deferred: the core never resolves futures itself
        # (an engine could be holding a lock); draining delivers.
        assert not any(t.future.done() for t in tickets)
        deliver_failures(core.drain_failures())
        for ticket in tickets:
            with pytest.raises(ServeError):
                ticket.future.result(timeout=0)
        assert core.drain_failures() == []  # drained exactly once

    def test_crash_requeues_then_completes(self):
        core = SchedulerCore(workers=1, max_retries=1)
        core.add_queue("m", capacity=2)
        tickets = submit_n(core, "m", 2)
        futures = [t.future for t in tickets]
        assignment = core.assign(0.0)
        core.complete(assignment, 0.1, OUTCOME_CRASH)
        assert core.pending("m") == 2  # both requeued
        retry = core.assign(0.2)
        assert [t.seq for t in retry.tickets] == [t.seq for t in tickets]
        core.complete(retry, 0.3, OUTCOME_OK)
        for ticket in retry.tickets:
            ticket.future.set_result("served")
        # The caller-held (original) futures resolve via propagation.
        assert all(f.result(timeout=1) == "served" for f in futures)
        stats = core.stats()
        assert stats.retries == 2 and stats.completed == 2
        assert stats.worker_crashes == 1

    def test_retry_exhaustion_fails_loudly(self):
        core = SchedulerCore(workers=1, max_retries=1)
        core.add_queue("m", capacity=1)
        (ticket,) = submit_n(core, "m", 1, tenant="alice")
        original = ticket.future
        for _ in range(2):
            assignment = core.assign(0.0)
            core.complete(assignment, 0.1, OUTCOME_CRASH)
        assert core.pending("m") == 0
        deliver_failures(core.drain_failures())
        with pytest.raises(ServeError, match="alice.*crash"):
            original.result(timeout=1)
        stats = core.stats()
        assert stats.failed == 1 and stats.retries == 1
        assert stats.worker_crashes == 2

    def test_idle_worker_crash_only_counts(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=1)
        assert core.crash_worker(0, 0.0) is None
        assert core.stats().worker_crashes == 1

    def test_remove_queue_fails_pending(self):
        core = SchedulerCore(workers=1)
        core.add_queue("m", capacity=4)
        tickets = submit_n(core, "m", 2)
        assert core.remove_queue("m") == 2
        deliver_failures(core.drain_failures())
        for ticket in tickets:
            with pytest.raises(ServeError, match="unregistered"):
                ticket.future.result(timeout=0)
        stats = core.stats()
        assert stats.failed == 2
        assert stats.submitted == stats.failed + stats.completed + (
            stats.rejected + stats.cancelled
        )

    def test_conservation_across_mixed_outcomes(self):
        core = SchedulerCore(workers=2, max_retries=0)
        core.add_queue("m", capacity=2, max_pending=4)
        accepted = []
        for _ in range(6):
            try:
                accepted.append(core.submit("m", Payload(), 0.0))
            except RejectedQuery:
                pass
        accepted[0].future.cancel()
        core.flush("m")
        first = core.assign(0.0)
        core.complete(first, 0.1, OUTCOME_OK)
        second = core.assign(0.1)
        core.complete(second, 0.2, OUTCOME_CRASH)  # max_retries=0 -> fail
        stats = core.stats()
        assert stats.submitted == 6
        assert stats.rejected == 2
        assert stats.cancelled == 1
        assert (
            stats.submitted
            == stats.completed + stats.rejected + stats.failed
            + stats.cancelled
        )
        assert core.outstanding == 0


class TestPercentile:
    def test_nearest_rank(self):
        ranked = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _percentile(ranked, 0.50) == 3.0
        assert _percentile(ranked, 0.99) == 5.0
        assert _percentile([7.0], 0.99) == 7.0
        assert _percentile([], 0.5) == 0.0


class TestThreadedLifecycle:
    def run_noop(self, assignment):
        for ticket in assignment.tickets:
            ticket.future.set_result("done")

    def test_close_is_idempotent(self):
        scheduler = Scheduler(threads=2)
        scheduler.add_queue("m", capacity=2, evaluate=self.run_noop)
        scheduler.close()
        assert scheduler.closed
        scheduler.close()  # regression: second close must not hang/raise
        scheduler.close()
        assert scheduler.closed

    def test_submit_after_close_raises_serve_error(self):
        scheduler = Scheduler(threads=1)
        scheduler.add_queue("m", capacity=2, evaluate=self.run_noop)
        scheduler.close()
        with pytest.raises(ServeError, match="closed scheduler"):
            scheduler.submit("m", Payload())

    def test_close_finishes_admitted_work(self):
        scheduler = Scheduler(threads=2)
        scheduler.add_queue("m", capacity=8, evaluate=self.run_noop)
        tickets = [scheduler.submit("m", Payload()) for _ in range(5)]
        scheduler.close()  # flushes the partial batch before stopping
        for ticket in tickets:
            assert ticket.future.result(timeout=30) == "done"
        assert scheduler.stats().completed == 5

    def test_deadline_forces_partial_cut_without_flush(self):
        scheduler = Scheduler(threads=1)
        scheduler.add_queue(
            "m", capacity=64, evaluate=self.run_noop, service_ms=1.0
        )
        ticket = scheduler.submit("m", Payload(), deadline_ms=30.0)
        # Never flushed: the slack cut alone must dispatch the batch.
        assert ticket.future.result(timeout=30) == "done"
        scheduler.close()

    def test_failure_callback_may_reenter_scheduler(self):
        """Regression: failure futures used to resolve while the worker
        held the scheduler lock, so a done-callback touching the
        scheduler (stats(), a sibling result()) deadlocked the pool."""
        scheduler = Scheduler(threads=1)

        def explode(assignment):
            raise RuntimeError("boom")

        scheduler.add_queue("m", capacity=1, evaluate=explode)
        reentry = []
        ticket = scheduler.submit("m", Payload())
        ticket.future.add_done_callback(
            lambda f: reentry.append(scheduler.stats().failed)
        )
        with pytest.raises(ServeError):
            ticket.future.result(timeout=30)
        scheduler.close()
        assert reentry == [1]  # the callback ran and saw the scheduler

    def test_virtual_clock_timestamps(self):
        clock = VirtualClock(start=100.0)
        scheduler = Scheduler(threads=1, clock=clock)
        scheduler.add_queue("m", capacity=1, evaluate=self.run_noop)
        ticket = scheduler.submit("m", Payload(), deadline_ms=250.0)
        assert ticket.submit_time == 100.0
        assert ticket.deadline == pytest.approx(100.25)
        ticket.future.result(timeout=30)
        scheduler.close()
        # Virtual time never moved, so latency is exactly zero.
        assert scheduler.stats().latency_p50_ms == 0.0


class TestClocks:
    def test_real_clock_monotonic(self):
        clock = RealClock()
        a, b = clock.now(), clock.now()
        assert b >= a

    def test_virtual_clock_advances_and_refuses_rewind(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance_to(2.0)
        assert clock.now() == 2.0
        with pytest.raises(ValidationError):
            clock.advance(-0.1)
        with pytest.raises(ValidationError):
            clock.advance_to(1.0)
