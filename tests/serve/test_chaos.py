"""The deterministic chaos matrix, simulated and real.

The acceptance soak for the fault-domain hardening PR: a seeded
10^4+-query timeline with >= 4 concurrent fault kinds (worker crashes,
hung workers, slow-factor ramps, corrupted ships, corrupted / dropped /
duplicated completions, poison queries) must

* replay **byte-identical** decision logs run-to-run,
* conserve accounting (``submitted == completed + rejected + failed +
  cancelled + dead_lettered``),
* serve every non-poison query with **bits identical** to the
  fault-free run of the same arrival schedule, and
* isolate exactly the poison queries in the dead-letter queue, with
  the quarantine/bisection trail in the decision log.

The real-process half drives the same fault kinds through
:class:`~repro.serve.faults.TransportFaultPlan` /
:func:`~repro.serve.faults.chaos_worker_main` — the production
:func:`worker_main` behind a deliberately misbehaving pipe — so the
recovery paths are exercised end-to-end, not just in simulation
(CI selects these with ``-k real``).
"""

import functools
import json

import pytest

from repro.errors import PoisonQueryError
from repro.serve import (
    ClusterService,
    ClusterSimRunner,
    FaultPlan,
    ModelProfile,
    RetryPolicy,
    TenantSpec,
    TransportFaultPlan,
    chaos_worker_main,
    generate_arrivals,
)

# Open-loop load light enough that a cluster losing workers to the
# full chaos matrix still drains its backlog: the acceptance bar is
# "every non-poison query served", so admission shedding is sized out.
PROFILES = [
    ModelProfile(name="credit", capacity=4, service_ms=40.0,
                 max_pending=100_000),
    ModelProfile(name="fraud", capacity=8, service_ms=100.0, weight=2,
                 max_pending=100_000),
]
TENANTS = [
    TenantSpec(name="acme", model="credit", rate_qps=25.0),
    TenantSpec(name="globex", model="fraud", rate_qps=15.0),
    TenantSpec(name="spiky", model="credit", rate_qps=3.0,
               burst_every_s=2.0, burst_size=8, priority=1),
]
SOAK_QUERIES = 12_000
POISON = (1234, 5678)


def chaos_plan(duration):
    return FaultPlan(
        worker_crashes=(duration * 0.2, duration * 0.45,
                        duration * 0.7),
        worker_hangs=(duration * 0.3, duration * 0.6),
        slow_every=11,
        slow_factor=2.0,
        slow_ramp=0.2,
        corrupt_ship_every=5,
        corrupt_completion_every=97,
        drop_completion_every=131,
        duplicate_completion_every=61,
        poison_queries=POISON,
    )


def chaos_soak(faults, queries=SOAK_QUERIES, seed=42, **runner_kwargs):
    kwargs = dict(
        workers=4,
        max_retries=2,
        retry_policy=RetryPolicy(hedge_factor=3.0),
        heartbeat_interval_s=0.25,
        heartbeat_timeout_s=0.6,
    )
    kwargs.update(runner_kwargs)
    arrivals = generate_arrivals(TENANTS, seed=seed,
                                 total_queries=queries)
    return ClusterSimRunner(PROFILES, **kwargs).run(arrivals, faults)


def assert_conserved(stats):
    assert stats.submitted == (
        stats.completed + stats.rejected + stats.failed
        + stats.cancelled + stats.dead_lettered
    ), "conservation violated"


class TestChaosSoakAcceptance:
    """One soak, all four acceptance properties."""

    @pytest.fixture(scope="class")
    def soak(self):
        duration = SOAK_QUERIES / 45.0
        faults = chaos_plan(duration)
        return (
            chaos_soak(faults),
            chaos_soak(faults),
            chaos_soak(FaultPlan()),  # the fault-free twin
        )

    def test_replay_is_byte_identical(self, soak):
        first, second, _ = soak
        assert json.dumps(first.decisions) == json.dumps(
            second.decisions
        )
        assert first.stats == second.stats
        assert first.results == second.results
        assert first.dead_letters == second.dead_letters

    def test_conservation_under_chaos(self, soak):
        first, _, clean = soak
        assert first.stats.submitted == SOAK_QUERIES
        assert first.stats.rejected == 0
        assert first.stats.failed == 0
        assert_conserved(first.stats)
        assert clean.stats.completed == SOAK_QUERIES

    def test_non_poison_bits_identical_to_fault_free_run(self, soak):
        first, _, clean = soak
        served = set(first.results)
        assert not served & set(POISON), "served a poison query"
        assert set(clean.results) - set(POISON) <= served
        for index in set(clean.results) - set(POISON):
            assert first.results[index] == clean.results[index]

    def test_poison_isolated_in_dlq_with_bisection_trail(self, soak):
        first, _, _ = soak
        assert first.stats.dead_lettered == len(POISON)
        assert sorted(e["value"] for e in first.dead_letters) == (
            sorted(POISON)
        )
        for entry in first.dead_letters:
            assert entry["attempts"] >= 2
            assert "quarantine" in entry["reason"]
        kinds = [d[0] for d in first.decisions]
        assert "bisect" in kinds and "dead_letter" in kinds
        # The chaos matrix actually fired: every fault family left its
        # signature in the decision log.
        assert {"crash", "restart", "park", "hedge", "stale"} <= (
            set(kinds)
        )


class TestChaosFaultKinds:
    """Each new fault kind in isolation, against the same load."""

    def test_hung_worker_detected_by_heartbeat_and_drained(self):
        report = chaos_soak(
            FaultPlan(worker_hangs=(20.0, 40.0)), queries=3000
        )
        assert report.stats.worker_crashes == 2
        assert {"crash", "restart"} <= {d[0] for d in report.decisions}
        assert report.stats.completed == 3000
        assert_conserved(report.stats)

    def test_dropped_completions_recovered_by_hedging(self):
        report = chaos_soak(
            FaultPlan(drop_completion_every=37), queries=3000
        )
        kinds = {d[0] for d in report.decisions}
        assert "hedge" in kinds and "hedge_win" in kinds
        assert report.stats.completed == 3000
        assert_conserved(report.stats)

    def test_duplicate_completions_dropped_as_stale(self):
        report = chaos_soak(
            FaultPlan(duplicate_completion_every=23), queries=3000,
            retry_policy=RetryPolicy(),  # no hedging needed
        )
        assert any(d[0] == "stale" for d in report.decisions)
        assert report.stats.completed == 3000
        assert_conserved(report.stats)

    def test_corrupt_completions_crash_the_sender(self):
        report = chaos_soak(
            FaultPlan(corrupt_completion_every=151), queries=3000,
            retry_policy=RetryPolicy(),
        )
        assert report.stats.worker_crashes >= 1
        assert report.stats.completed == 3000
        assert_conserved(report.stats)

    def test_corrupt_ships_crash_fail_closed(self):
        report = chaos_soak(
            FaultPlan(corrupt_ship_every=4), queries=3000,
            retry_policy=RetryPolicy(),
        )
        assert report.stats.worker_crashes >= 1
        assert report.stats.completed == 3000
        assert_conserved(report.stats)

    def test_poison_alone_lands_in_dlq(self):
        report = chaos_soak(
            FaultPlan(poison_queries=(100,)), queries=3000,
            retry_policy=RetryPolicy(),
        )
        assert report.stats.completed == 2999
        assert report.stats.dead_lettered == 1
        assert [e["value"] for e in report.dead_letters] == [100]
        assert_conserved(report.stats)


# ---------------------------------------------------------------------------
# Real multiprocessing chaos (CI selects with -k real)
# ---------------------------------------------------------------------------


def real_queries(forest, count, seed=21, precision=8):
    import numpy as np

    rng = np.random.default_rng(seed)
    limit = 1 << precision
    return [
        [int(v) for v in rng.integers(0, limit - 1, forest.n_features)]
        for _ in range(count)
    ]


def chaos_service(plan, **kwargs):
    defaults = dict(
        workers=2,
        backend="vector",
        max_retries=1,
        retry_policy=RetryPolicy(base_delay_ms=10.0),
        worker_entry=functools.partial(chaos_worker_main, plan),
    )
    defaults.update(kwargs)
    return ClusterService(**defaults)


class TestRealChaos:
    def test_real_poison_query_quarantined_to_dlq(self, example_forest):
        queries = real_queries(example_forest, 8)
        limit = 1 << 8
        poison = [limit - 1] * example_forest.n_features
        queries[5] = poison
        plan = TransportFaultPlan(poison_feature=tuple(poison))
        with chaos_service(plan) as service:
            service.register_model(
                "toxic", example_forest, precision=8, max_batch_size=4
            )
            futures = [service.submit("toxic", q) for q in queries]
            service.flush("toxic")
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=180))
                except PoisonQueryError as exc:
                    outcomes.append(exc)
            stats = service.stats()
            decisions = service.decisions
            dlq = service.dlq()
        for k, outcome in enumerate(outcomes):
            if k == 5:
                assert isinstance(outcome, PoisonQueryError)
            else:
                assert outcome.bitvector == (
                    example_forest.label_bitvector(queries[k])
                )
        assert stats.dead_lettered == 1
        assert stats.completed == 7
        assert_conserved(stats)
        assert len(dlq) == 1 and dlq[0]["model"] == "toxic"
        kinds = {d[0] for d in decisions}
        assert {"crash", "park", "bisect", "dead_letter"} <= kinds

    def test_real_corrupt_and_duplicate_results_recover(
        self, example_forest
    ):
        plan = TransportFaultPlan(corrupt_result_every=3,
                                  duplicate_result_every=2)
        queries = real_queries(example_forest, 24, seed=5)
        with chaos_service(plan, max_retries=3) as service:
            service.register_model(
                "scramble", example_forest, precision=8,
                max_batch_size=4
            )
            results = service.classify_many("scramble", queries)
            stats = service.stats()
            decisions = service.decisions
        for features, res in zip(queries, results):
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        # A truncated result is a fail-closed kill, not a bad answer.
        assert stats.worker_crashes >= 1
        assert "crash" in {d[0] for d in decisions}

    def test_real_dropped_results_recovered_by_hedging(
        self, example_forest
    ):
        # Waves keep at most one batch in flight, so the hedge of the
        # dropped batch always finds a free worker whose per-process
        # result counter is NOT at a drop point: wave 1 completes on
        # the sticky first-choice worker (its result #1), wave 2 lands
        # there too and its result #2 is silently dropped — recovery
        # must come from the hedge on the idle second worker
        # (result #1, delivered).  hedge_min_ms sits well above the
        # cold-start evaluation time: a spurious hedge on wave 1
        # (the registry's cost-model estimate undershoots real wall
        # time) would advance both workers' counters in lockstep and
        # put the wave-2 hedge at a drop point too.
        plan = TransportFaultPlan(drop_result_every=2)
        queries = real_queries(example_forest, 12, seed=7)
        with chaos_service(
            plan,
            retry_policy=RetryPolicy(hedge_factor=2.0,
                                     hedge_min_ms=5000.0),
        ) as service:
            service.register_model(
                "ghost", example_forest, precision=8, max_batch_size=4
            )
            results = []
            for wave in range(3):
                futures = [
                    service.submit("ghost", q)
                    for q in queries[4 * wave:4 * wave + 4]
                ]
                service.flush("ghost")
                results.extend(f.result(timeout=120) for f in futures)
            stats = service.stats()
            decisions = service.decisions
        for features, res in zip(queries, results):
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        assert stats.completed == 12
        kinds = {d[0] for d in decisions}
        assert "hedge" in kinds and "hedge_win" in kinds
