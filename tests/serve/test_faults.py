"""Unit tests for the pure fault-domain policy objects.

Everything in :mod:`repro.serve.faults` must be a deterministic
function of its inputs — the decision-core discipline — because the
chaos soaks assert byte-identical replays, and any live randomness or
clock here would break them.  These tests pin that purity down
directly: backoff with seeded jitter, the breaker state machine
(including the probe-release healing path), dead-letter bounding, and
the degradation ladders.
"""

import pytest

from repro.errors import ValidationError
from repro.serve.faults import (
    BACKEND_LADDER,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ENGINE_LADDER,
    CircuitBreaker,
    DeadLetter,
    DeadLetterQueue,
    RetryPolicy,
    degrade_backend,
    degrade_engine,
)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        a = RetryPolicy(seed=3)
        b = RetryPolicy(seed=3)
        for attempt in range(1, 6):
            assert a.backoff_s(attempt, key="m:7") == (
                b.backoff_s(attempt, key="m:7")
            )

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy()
        for attempt in range(1, 6):
            delay = policy.backoff_s(attempt, key="q")
            base = min(0.025 * 2.0 ** (attempt - 1), 1.0)
            assert base <= delay <= base * 1.25

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.backoff_s(30) == pytest.approx(1.0)

    def test_jitter_varies_by_key_seed_and_attempt(self):
        policy = RetryPolicy()
        assert policy.backoff_s(1, key="a") != policy.backoff_s(
            1, key="b"
        )
        assert policy.backoff_s(1, key="a") != RetryPolicy(
            seed=1
        ).backoff_s(1, key="a")

    def test_immediate_policy_never_waits(self):
        policy = RetryPolicy.immediate()
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(9, key="x") == 0.0

    def test_hedging_disabled_by_default(self):
        assert RetryPolicy().hedging_enabled is False
        assert RetryPolicy(hedge_factor=3.0).hedging_enabled is True

    def test_hedge_after_respects_floor(self):
        policy = RetryPolicy(hedge_factor=2.0, hedge_min_ms=50.0)
        assert policy.hedge_after_s(0.0) == pytest.approx(0.050)
        assert policy.hedge_after_s(1.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValidationError, match="base_delay_ms"):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValidationError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValidationError, match="max_delay_ms"):
            RetryPolicy(base_delay_ms=10.0, max_delay_ms=5.0)
        with pytest.raises(ValidationError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValidationError, match="hedge_factor"):
            RetryPolicy(hedge_factor=-1.0)
        with pytest.raises(ValidationError, match="attempt"):
            RetryPolicy().backoff_s(0)


class TestCircuitBreaker:
    KEY = ("m", 0)

    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, open_s=2.0)
        assert breaker.allow(self.KEY, 0.0) == (True, None)
        breaker.record_failure(self.KEY, 0.0)
        breaker.record_failure(self.KEY, 0.1)
        assert breaker.state(self.KEY) == BREAKER_CLOSED
        assert breaker.record_failure(self.KEY, 0.2) == BREAKER_OPEN
        assert breaker.allow(self.KEY, 0.3) == (False, None)
        assert breaker.open_keys() == [self.KEY]
        assert breaker.next_transition_time() == pytest.approx(2.2)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(self.KEY, 0.0)
        breaker.record_success(self.KEY, 0.1)
        assert breaker.record_failure(self.KEY, 0.2) is None
        assert breaker.state(self.KEY) == BREAKER_CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, open_s=1.0)
        breaker.record_failure(self.KEY, 0.0)
        assert breaker.allow(self.KEY, 0.5) == (False, None)
        # The first allow() past open_s takes the single probe slot.
        assert breaker.allow(self.KEY, 1.5) == (True, BREAKER_HALF_OPEN)
        assert breaker.allow(self.KEY, 1.6) == (False, None)
        assert breaker.record_success(self.KEY, 1.7) == BREAKER_CLOSED
        assert breaker.allow(self.KEY, 1.8) == (True, None)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, open_s=1.0)
        breaker.record_failure(self.KEY, 0.0)
        assert breaker.allow(self.KEY, 1.5)[0] is True
        assert breaker.record_failure(self.KEY, 1.6) == BREAKER_OPEN
        assert breaker.allow(self.KEY, 1.7) == (False, None)
        # The re-open restarts the open_s window from the probe failure.
        assert breaker.next_transition_time() == pytest.approx(2.6)

    def test_release_probe_reopens_the_slot(self):
        # A probe taken by a placement that never actually assigned
        # (the cut was cancelled) must be releasable, or the key can
        # never heal.
        breaker = CircuitBreaker(failure_threshold=1, open_s=1.0)
        breaker.record_failure(self.KEY, 0.0)
        assert breaker.allow(self.KEY, 1.5)[0] is True
        assert breaker.allow(self.KEY, 1.6) == (False, None)
        breaker.release_probe(self.KEY)
        assert breaker.allow(self.KEY, 1.7) == (True, None)

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(("m", 0), 0.0)
        assert breaker.allow(("m", 0), 0.1) == (False, None)
        assert breaker.allow(("m", 1), 0.1) == (True, None)
        assert breaker.allow(("other", 0), 0.1) == (True, None)

    def test_validation(self):
        with pytest.raises(ValidationError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError, match="open_s"):
            CircuitBreaker(open_s=0.0)


def letter(seq, **kwargs):
    fields = dict(model="m", tenant="t", seq=seq, origin_batch=1,
                  attempts=3, reason="poison", time=0.5)
    fields.update(kwargs)
    return DeadLetter(**fields)


class TestDeadLetterQueue:
    def test_bounded_fifo_counts_drops(self):
        dlq = DeadLetterQueue(limit=2)
        for seq in range(3):
            dlq.append(letter(seq))
        assert len(dlq) == 2
        assert [e.seq for e in dlq.entries()] == [1, 2]
        assert dlq.dropped == 1 and dlq.total == 3

    def test_as_dicts_round_trip(self):
        dlq = DeadLetterQueue()
        dlq.append(letter(7))
        (entry,) = dlq.as_dicts()
        assert entry == {
            "model": "m", "tenant": "t", "seq": 7, "origin_batch": 1,
            "attempts": 3, "reason": "poison", "time": 0.5,
        }

    def test_limit_validation(self):
        with pytest.raises(ValidationError, match="limit"):
            DeadLetterQueue(limit=0)


class TestDegradationLadders:
    def test_engine_ladder_walks_to_eager(self):
        chain = []
        engine = ENGINE_LADDER[0]
        while engine is not None:
            chain.append(engine)
            engine = degrade_engine(engine)
        assert chain == ["megakernel", "tape", "plan", "eager"]

    def test_backend_ladder(self):
        assert BACKEND_LADDER == ("vector", "reference")
        assert degrade_backend("vector") == "reference"
        assert degrade_backend("reference") is None

    def test_unknown_rungs_have_no_fallback(self):
        assert degrade_engine("warp-drive") is None
        assert degrade_backend("abacus") is None
