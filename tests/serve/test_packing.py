"""Tests for batch geometry, slot packing, and demultiplexing."""

import numpy as np
import pytest

from repro.core.compiler import CopseCompiler
from repro.errors import ValidationError
from repro.fhe.params import EncryptionParams
from repro.fhe.simd import from_bitplanes, replicate
from repro.serve.packing import (
    demux_bitvectors,
    pack_query_planes,
    plan_layout,
    segment_mask,
    tile_model_vector,
    validate_features,
)


@pytest.fixture
def compiled(example_forest):
    return CopseCompiler(precision=8).compile(example_forest)


@pytest.fixture
def layout(compiled, params):
    return plan_layout(compiled, params)


class TestPlanLayout:
    def test_stride_is_required_width(self, compiled, layout):
        assert layout.stride == compiled.required_width()

    def test_capacity_fills_slots(self, compiled, layout, params):
        assert layout.capacity == params.slot_count // layout.stride
        assert layout.batched_width <= params.slot_count
        assert layout.capacity > 1  # the whole point of batching

    def test_max_batch_size_caps_capacity(self, compiled, params):
        capped = plan_layout(compiled, params, max_batch_size=3)
        assert capped.capacity == 3

    def test_max_batch_size_cannot_exceed_slots(self, compiled, params):
        huge = plan_layout(compiled, params, max_batch_size=10**6)
        assert huge.batched_width <= params.slot_count

    def test_bad_max_batch_size_rejected(self, compiled, params):
        with pytest.raises(ValidationError):
            plan_layout(compiled, params, max_batch_size=0)

    def test_too_wide_model_rejected(self, compiled):
        tiny = EncryptionParams(security=128, bits=400, columns=1)
        # columns=1 -> 320 slots; the example model fits, so shrink via a
        # synthetic check instead: capacity degrades to >= 1 when it fits.
        layout = plan_layout(compiled, tiny)
        assert layout.capacity >= 1

    def test_block_slice_bounds(self, layout):
        assert layout.block_slice(0) == slice(0, layout.stride)
        with pytest.raises(ValidationError):
            layout.block_slice(layout.capacity)


class TestValidateFeatures:
    def test_accepts_domain_values(self, layout):
        assert validate_features(layout, [0, 255]) == [0, 255]

    def test_rejects_wrong_arity(self, layout):
        with pytest.raises(ValidationError):
            validate_features(layout, [1, 2, 3])

    def test_rejects_out_of_domain(self, layout):
        with pytest.raises(ValidationError):
            validate_features(layout, [0, 256])
        with pytest.raises(ValidationError):
            validate_features(layout, [-1, 0])


class TestPackQueryPlanes:
    def test_blocks_hold_replicated_bitplanes(self, layout):
        queries = [[40, 200], [17, 3]]
        planes = pack_query_planes(layout, queries)
        assert planes.shape == (layout.precision, layout.batched_width)
        q = layout.quantized_branching
        for k, features in enumerate(queries):
            block = planes[:, k * layout.stride : k * layout.stride + q]
            expected = replicate(features, layout.max_multiplicity)
            assert from_bitplanes(block) == expected

    def test_unused_blocks_are_zero(self, layout):
        planes = pack_query_planes(layout, [[1, 2]])
        assert not planes[:, layout.stride :].any()

    def test_rejects_empty_and_overfull(self, layout):
        with pytest.raises(ValidationError):
            pack_query_planes(layout, [])
        too_many = [[0, 0]] * (layout.capacity + 1)
        with pytest.raises(ValidationError):
            pack_query_planes(layout, too_many)


class TestTileAndMask:
    def test_tile_pads_and_repeats(self, layout):
        vec = [1, 0, 1]
        tiled = tile_model_vector(layout, vec)
        assert tiled.size == layout.batched_width
        block = np.zeros(layout.stride, dtype=np.uint8)
        block[:3] = vec
        for k in range(layout.capacity):
            assert np.array_equal(tiled[layout.block_slice(k)], block)

    def test_tile_rejects_oversize(self, layout):
        with pytest.raises(ValidationError):
            tile_model_vector(layout, [1] * (layout.stride + 1))

    def test_segment_mask_selects_offsets(self, layout):
        mask = segment_mask(layout, 2, 5)
        for k in range(layout.capacity):
            block = mask[layout.block_slice(k)]
            assert block[2:5].all() and block.sum() == 3

    def test_segment_mask_bounds(self, layout):
        with pytest.raises(ValidationError):
            segment_mask(layout, 3, 3)
        with pytest.raises(ValidationError):
            segment_mask(layout, 0, layout.stride + 1)


class TestDemux:
    def test_round_trip_blocks(self, layout):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, layout.batched_width)
        out = demux_bitvectors(layout, [int(b) for b in bits], 2)
        for k in range(2):
            start = k * layout.stride
            assert out[k] == [
                int(b) for b in bits[start : start + layout.num_labels]
            ]

    def test_count_and_width_validated(self, layout):
        bits = [0] * layout.batched_width
        with pytest.raises(ValidationError):
            demux_bitvectors(layout, bits, layout.capacity + 1)
        with pytest.raises(ValidationError):
            demux_bitvectors(layout, bits[:-1], 1)


class _WideCompiled:
    """Stand-in compiled model whose padded width is chosen exactly.

    ``plan_layout`` only reads the public geometry attributes, so a stub
    lets the corner cases pin the width precisely — a real forest's
    padded width is an emergent quantity.
    """

    def __init__(self, width: int):
        self._width = width
        self.precision = 4
        self.n_features = 2
        # The compiler's identity q = K * n_features must hold for the
        # packer's replication step to line up with the layout.
        self.max_multiplicity = width // 2
        self.quantized_branching = 2 * (width // 2)
        self.branching = width
        self.num_labels = 3

    def required_width(self) -> int:
        return self._width


class TestWidthCorners:
    """Geometry corner cases: the batch degenerates gracefully."""

    def test_width_exactly_slot_count_packs_one_query(self, params):
        compiled = _WideCompiled(params.slot_count)
        layout = plan_layout(compiled, params)
        assert layout.stride == params.slot_count
        assert layout.capacity == 1  # exactly one query fits
        assert layout.batched_width == params.slot_count

        planes = pack_query_planes(layout, [[3, 1]])
        assert planes.shape == (layout.precision, params.slot_count)
        bits = [0] * layout.batched_width
        bits[: layout.num_labels] = [1, 0, 1]
        assert demux_bitvectors(layout, bits, 1) == [[1, 0, 1]]

    def test_width_one_over_slot_count_rejected(self, params):
        with pytest.raises(ValidationError, match="does not fit"):
            plan_layout(_WideCompiled(params.slot_count + 1), params)

    def test_batch_of_one_query_in_wide_batch(self, layout):
        """A single query in a many-slot batch: the other blocks stay
        zero (dummy queries) and demux returns exactly one bitvector."""
        assert layout.capacity > 1
        planes = pack_query_planes(layout, [[40, 200]])
        for k in range(1, layout.capacity):
            block = planes[:, k * layout.stride : (k + 1) * layout.stride]
            assert not block.any()
        bits = list(np.arange(layout.batched_width) % 2)
        out = demux_bitvectors(layout, [int(b) for b in bits], 1)
        assert len(out) == 1
        assert out[0] == [int(b) for b in bits[: layout.num_labels]]

    def test_single_query_batch_serves_end_to_end(self, example_forest):
        """capacity == 1 through the whole service (batch of 1 is just
        the degenerate batch, not a special path)."""
        from repro.serve import CopseService

        with CopseService(threads=1) as service:
            registered = service.register_model(
                "one", example_forest, max_batch_size=1
            )
            assert registered.batch_capacity == 1
            results = service.classify_many(
                "one", [[40, 200], [17, 3], [250, 250]]
            )
            stats = service.stats()
        assert all(r.oracle_ok for r in results)
        assert all(r.batch_fill == 1 for r in results)
        assert stats.batches == 3
        assert stats.avg_batch_fill == 1.0
