"""Scheduler invariants under deterministic simulated load.

Everything here runs the *production* decision core
(:class:`repro.serve.scheduler.SchedulerCore`) under a virtual clock via
:class:`repro.serve.loadgen.SimRunner` — thousands of queries, bursts,
crashes, and overload, with zero wall-clock sleeps and zero flakiness.
The locked invariants:

* **Determinism** — same seed, same fault plan => identical scheduling
  decisions and byte-identical stats.
* **Conservation** — submitted == completed + rejected + failed +
  cancelled, always, including under crashes and admission rejections.
* **No starvation** — every tenant's accepted queries complete, even
  when a hot tenant offers 10x the load.
* **FIFO-within-tenant** — equal-priority queries of one tenant are
  packed in submission order (first packing; a crash retry may repack).
* **Deadline-miss monotonicity** — the miss rate never decreases as
  offered load grows, all else equal.

``REPRO_BENCH_QUICK=1`` (the CI quick mode) trims the big soak.
"""

import os

import pytest

from repro.errors import ValidationError
from repro.serve import (
    FaultPlan,
    ModelProfile,
    SimRunner,
    TenantSpec,
    generate_arrivals,
    offered_load,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").lower() not in (
    "", "0", "false", "no",
)

#: The acceptance soak's size (quick mode trims it for CI replays).
SOAK_QUERIES = 1500 if QUICK else 5000


def first_pack_order(report):
    """Each tenant's pack order with crash repacks collapsed to the
    first attempt (retries legitimately repack out of order)."""
    out = {}
    for tenant, seqs in report.packed_order.items():
        seen = set()
        firsts = []
        for seq in seqs:
            if seq not in seen:
                seen.add(seq)
                firsts.append(seq)
        out[tenant] = firsts
    return out


def check_invariants(report):
    """The invariant bundle every simulation must satisfy."""
    stats = report.stats
    assert stats.submitted == (
        stats.completed + stats.rejected + stats.failed + stats.cancelled
    ), "conservation violated"
    for tenant, seqs in first_pack_order(report).items():
        assert seqs == sorted(seqs), f"FIFO violated within tenant {tenant}"
    # No starvation: every admitted query reached a terminal state.
    assert stats.completed + stats.failed == stats.submitted - (
        stats.rejected + stats.cancelled
    )


def two_model_setup():
    profiles = [
        ModelProfile(name="credit", capacity=4, service_ms=60.0,
                     max_pending=64),
        ModelProfile(name="fraud", capacity=8, service_ms=150.0,
                     weight=2.0, max_pending=64),
    ]
    tenants = [
        TenantSpec(name="acme", model="credit", rate_qps=30.0,
                   deadline_ms=400.0),
        TenantSpec(name="globex", model="fraud", rate_qps=20.0,
                   deadline_ms=900.0),
        TenantSpec(name="spiky", model="credit", burst_every_s=0.5,
                   burst_size=6, deadline_ms=500.0, priority=1),
    ]
    return profiles, tenants


class TestDeterminism:
    def test_same_seed_identical_decisions_and_stats(self):
        profiles, tenants = two_model_setup()
        faults = FaultPlan(worker_crashes=(0.8,), slow_every=9,
                           slow_factor=2.0)

        def run():
            arrivals = generate_arrivals(tenants, seed=7,
                                         total_queries=800)
            return SimRunner(profiles, threads=3).run(arrivals, faults)

        first, second = run(), run()
        assert first.decisions == second.decisions
        assert first.stats == second.stats
        assert (
            first.service_stats().render()
            == second.service_stats().render()
        )

    def test_different_seeds_differ(self):
        profiles, tenants = two_model_setup()
        runs = []
        for seed in (1, 2):
            arrivals = generate_arrivals(tenants, seed=seed,
                                         total_queries=300)
            runs.append(SimRunner(profiles, threads=2).run(arrivals))
        assert runs[0].decisions != runs[1].decisions

    def test_adding_a_tenant_preserves_other_streams(self):
        profiles, tenants = two_model_setup()
        base = generate_arrivals(tenants, seed=3, duration_s=5.0)
        more = generate_arrivals(
            tenants + [TenantSpec(name="late", model="credit",
                                  rate_qps=5.0)],
            seed=3, duration_s=5.0,
        )
        assert [a for a in more if a.tenant != "late"] == base


class TestInvariants:
    def test_invariant_bundle_under_faults(self):
        profiles, tenants = two_model_setup()
        arrivals = generate_arrivals(tenants, seed=11, total_queries=1000)
        report = SimRunner(profiles, threads=3).run(
            arrivals,
            FaultPlan(worker_crashes=(0.5, 1.5, 2.5), slow_every=5,
                      slow_factor=3.0),
        )
        check_invariants(report)
        assert report.stats.completed > 0
        assert report.stats.worker_crashes == 3

    def test_no_starvation_under_10x_tenant_skew(self):
        profiles = [
            ModelProfile(name="hot", capacity=4, service_ms=80.0),
            ModelProfile(name="cold", capacity=4, service_ms=80.0),
        ]
        tenants = [
            TenantSpec(name="whale", model="hot", rate_qps=100.0,
                       deadline_ms=400.0),
            TenantSpec(name="minnow", model="cold", rate_qps=10.0,
                       deadline_ms=400.0),
        ]
        arrivals = generate_arrivals(tenants, seed=5, total_queries=1100)
        report = SimRunner(profiles, threads=2).run(arrivals)
        check_invariants(report)
        stats = report.stats
        assert stats.per_tenant_completed["minnow"] == (
            stats.per_tenant_submitted["minnow"]
        )
        # Fair sharing also keeps the small tenant's latency sane: it
        # must not queue behind the whale's whole backlog.
        assert stats.per_tenant_completed["whale"] > 0

    def test_deadline_miss_rate_monotone_in_offered_load(self):
        profiles = [
            ModelProfile(name="m", capacity=4, service_ms=100.0,
                         max_pending=256),
        ]
        miss_rates = []
        loads = []
        for rate in (20.0, 60.0, 120.0, 240.0):
            tenants = [
                TenantSpec(name="t", model="m", rate_qps=rate,
                           deadline_ms=300.0),
            ]
            arrivals = generate_arrivals(tenants, seed=13,
                                         total_queries=600)
            report = SimRunner(profiles, threads=2).run(arrivals)
            check_invariants(report)
            miss_rates.append(report.stats.deadline_miss_rate)
            loads.append(offered_load(tenants, profiles, threads=2))
        assert loads == sorted(loads)
        assert miss_rates == sorted(miss_rates), (
            f"deadline-miss rate not monotone in load: {miss_rates}"
        )
        assert miss_rates[-1] > miss_rates[0]

    def test_overload_rejects_instead_of_growing_queue(self):
        profiles = [
            ModelProfile(name="m", capacity=2, service_ms=200.0,
                         max_pending=8),
        ]
        tenants = [
            TenantSpec(name="flood", model="m", rate_qps=200.0,
                       deadline_ms=250.0),
        ]
        arrivals = generate_arrivals(tenants, seed=17, total_queries=500)
        report = SimRunner(profiles, threads=1).run(arrivals)
        check_invariants(report)
        assert report.stats.rejected > 100  # overload actually shed
        assert report.stats.completed > 0

    def test_crash_retries_complete_or_fail_loudly(self):
        profiles = [ModelProfile(name="m", capacity=4, service_ms=100.0)]
        tenants = [
            TenantSpec(name="t", model="m", rate_qps=50.0,
                       deadline_ms=500.0),
        ]
        arrivals = generate_arrivals(tenants, seed=23, total_queries=400)
        report = SimRunner(profiles, threads=2, max_retries=1).run(
            arrivals,
            FaultPlan(worker_crashes=(0.2, 0.4, 0.6, 0.8, 1.0)),
        )
        check_invariants(report)
        assert report.stats.worker_crashes == 5
        assert report.stats.retries > 0

    def test_slack_cuts_bound_latency_under_trickle_load(self):
        """A huge batch capacity must not hold a trickle of deadline-
        bearing queries hostage: slack cuts dispatch partial batches."""
        profiles = [ModelProfile(name="m", capacity=64, service_ms=50.0)]
        tenants = [
            TenantSpec(name="t", model="m", rate_qps=5.0,
                       deadline_ms=200.0),
        ]
        arrivals = generate_arrivals(tenants, seed=29, total_queries=100)
        report = SimRunner(profiles, threads=1).run(arrivals)
        check_invariants(report)
        # Count-only cutting would wait ~13 s to fill 64 slots; the
        # slack cut caps every query's latency at deadline scale.
        assert report.stats.latency_max_ms <= 200.0 + 50.0 + 1e-6
        assert report.stats.deadline_misses == 0
        assert report.stats.batches >= 3  # genuinely partial batches


class TestAcceptanceSoak:
    """The PR acceptance scenario: a seeded mixed-tenant soak with a
    mid-run worker crash and burst arrivals, replayed twice."""

    def build(self):
        profiles = [
            ModelProfile(name="credit", capacity=6, service_ms=55.0,
                         max_pending=96),
            ModelProfile(name="fraud", capacity=12, service_ms=140.0,
                         weight=2.0, max_pending=96),
            ModelProfile(name="churn", capacity=4, service_ms=35.0,
                         max_pending=96),
        ]
        tenants = [
            TenantSpec(name="acme", model="credit", rate_qps=45.0,
                       deadline_ms=350.0),
            TenantSpec(name="globex", model="fraud", rate_qps=35.0,
                       deadline_ms=900.0),
            TenantSpec(name="initech", model="churn", rate_qps=25.0,
                       deadline_ms=250.0, priority=1),
            TenantSpec(name="spiky", model="credit", burst_every_s=0.75,
                       burst_size=15, deadline_ms=500.0),
        ]
        # The crash lands just after the t=2.25 burst, when the pool is
        # provably busy — so it interrupts a batch, not an idle worker.
        faults = FaultPlan(worker_crashes=(2.27,), slow_every=11,
                           slow_factor=2.5)
        return profiles, tenants, faults

    def run_soak(self):
        profiles, tenants, faults = self.build()
        arrivals = generate_arrivals(tenants, seed=4242,
                                     total_queries=SOAK_QUERIES)
        return SimRunner(profiles, threads=4).run(arrivals, faults)

    def test_soak_invariants_and_determinism(self):
        import time

        start = time.perf_counter()
        first = self.run_soak()
        elapsed = time.perf_counter() - start
        second = self.run_soak()

        # Full-size runs must replay thousands of queries in seconds.
        assert elapsed < 10.0, f"soak took {elapsed:.1f}s of real time"
        stats = first.stats
        assert stats.submitted == SOAK_QUERIES
        assert stats.worker_crashes == 1
        check_invariants(first)
        check_invariants(second)

        # Byte-identical stats + identical decisions across runs.
        assert first.stats == second.stats
        assert first.decisions == second.decisions
        render = first.service_stats().render()
        assert render == second.service_stats().render()
        assert "deadline misses" in render

        # The soak actually exercised the interesting machinery.
        assert stats.batches > SOAK_QUERIES // 12
        assert stats.retries > 0 or stats.failed > 0
        assert stats.latency_p99_ms >= stats.latency_p50_ms > 0


class TestRealServiceWithVirtualClock:
    """The sim profile and the live service agree on the seams: a real
    model served under a virtual clock with deadlines and tenants."""

    def test_profile_from_registered_model(self, example_forest):
        from repro.serve import CopseService

        with CopseService(threads=1) as service:
            registered = service.register_model(
                "m", example_forest, max_batch_size=4
            )
            profile = ModelProfile.from_registered(
                registered, max_pending=32
            )
        assert profile.capacity == 4
        assert profile.service_ms == pytest.approx(
            registered.estimated_batch_ms
        )
        assert profile.service_ms > 0

    def test_eager_model_has_no_estimate(self, example_forest):
        from repro.serve import CopseService

        with CopseService(threads=1, engine="eager") as service:
            registered = service.register_model("m", example_forest)
            assert registered.estimated_batch_ms is None
            with pytest.raises(ValidationError, match="no cached plan"):
                ModelProfile.from_registered(registered)

    def test_service_under_virtual_clock_with_tenants(self, example_forest):
        from repro.serve import CopseService, VirtualClock

        clock = VirtualClock()
        with CopseService(
            threads=2, clock=clock, default_deadline_ms=1000.0
        ) as service:
            service.register_model("m", example_forest, max_batch_size=3)
            futures = [
                service.submit(
                    "m", features, tenant=f"tenant-{i % 2}",
                )
                for i, features in enumerate(
                    [[i * 7 % 256, i * 31 % 256] for i in range(9)]
                )
            ]
            service.flush("m")
            results = [f.result(timeout=60) for f in futures]
            stats = service.stats()
        assert all(r.oracle_ok for r in results)
        sched = stats.scheduler
        assert sched.completed == 9
        assert sched.per_tenant_completed == {
            "tenant-0": 5, "tenant-1": 4,
        }
        # Virtual time never advanced, so nothing missed its deadline
        # and every recorded latency is exactly zero.
        assert sched.deadline_misses == 0
        assert sched.latency_p99_ms == 0.0
