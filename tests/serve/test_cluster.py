"""Cluster invariants: determinism, crash/epoch protocol, real workers.

Three layers, mirroring the module's pure-core/thin-engine split:

* **RouterCore unit tests** — placement, ship-once, epochs, stale
  completions, draining restarts, redeploys, heartbeats, all driven
  with explicit timestamps and no engine at all.
* **Simulated soaks** (:class:`~repro.serve.cluster.ClusterSimRunner`)
  — seeded 10^5-query timelines with injected mid-run worker crashes:
  byte-identical decisions and stats per seed, conservation, and
  1-worker vs N-worker accounting equivalence.  ``REPRO_BENCH_QUICK=1``
  trims the big soak for CI replays.
* **Real multiprocessing tests** (``real`` in the name, so CI's smoke
  step can select them with ``-k real``) — spawn-grade pickling of the
  :class:`~repro.serve.transport.ShippedModel` envelope, a 2-worker
  round trip, 1-vs-2-worker bit identity, and a mid-soak ``kill()``
  with full recovery.
"""

import dataclasses
import json
import os
import pickle

import pytest

from repro.errors import ServeError, ValidationError
from repro.serve import (
    ClusterService,
    ClusterSimRunner,
    FaultPlan,
    ModelProfile,
    ModelRegistry,
    RouterCore,
    ShippedModel,
    TenantSpec,
    generate_arrivals,
)
from repro.serve.cluster import AssignAction, ShipAction
from repro.serve.scheduler import OUTCOME_OK

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").lower() not in (
    "", "0", "false", "no",
)

#: The acceptance soak: 10^5 queries full, trimmed for CI replays.
SOAK_QUERIES = 20_000 if QUICK else 100_000


# ---------------------------------------------------------------------------
# RouterCore: pure placement/failover, no engine
# ---------------------------------------------------------------------------


class FakeQuery:
    """Minimal router payload (just the future the core resolves)."""

    def __init__(self):
        from concurrent.futures import Future

        self.future = Future()


def full_batch(router, name="m", now=0.0, capacity=2):
    for _ in range(capacity):
        router.submit(name, FakeQuery(), now)


class TestRouterCore:
    def make(self, workers=2, **kwargs):
        router = RouterCore(workers=workers, **kwargs)
        router.add_model("m", capacity=2, service_ms=10.0)
        for w in range(workers):
            router.worker_started(w, 0.0)
        return router

    def test_placement_is_deterministic_and_salted_hash_free(self):
        router = self.make(workers=4)
        order = router.placement_order("m")
        assert sorted(order) == [0, 1, 2, 3]
        # Stable across router instances (zlib.crc32, not hash()).
        assert order == self.make(workers=4).placement_order("m")

    def test_dispatch_ships_then_assigns(self):
        router = self.make()
        full_batch(router)
        actions = router.dispatch(0.0)
        assert [type(a) for a in actions] == [ShipAction, AssignAction]
        ship, assign = actions
        assert ship.worker == assign.assignment.worker
        assert ship.epoch == assign.epoch == 0
        assert assign.newly_shipped

    def test_ship_exactly_once_per_worker_epoch(self):
        router = self.make(workers=1)
        full_batch(router)
        first = router.dispatch(0.0)
        router.complete(first[1].assignment, 0, 0.1)
        full_batch(router, now=0.2)
        second = router.dispatch(0.2)
        assert [type(a) for a in first] == [ShipAction, AssignAction]
        assert [type(a) for a in second] == [AssignAction]
        assert not second[0].newly_shipped

    def test_stale_epoch_completion_dropped(self):
        router = self.make(workers=2)
        full_batch(router)
        actions = router.dispatch(0.0)
        assignment = actions[-1].assignment
        victim = assignment.worker
        router.crash_worker(victim, 0.5)
        # The dead incarnation's completion arrives late: dropped.
        assert router.complete(assignment, 0, 1.0) is False
        assert router.metrics.counter_value(
            "cluster_epoch_invalidated") == 1
        assert ("stale", assignment.batch_id, victim, 0, 1.0) in (
            router.decisions
        )

    def test_crash_parks_then_other_worker_completes(self):
        router = self.make(workers=2)
        full_batch(router)
        first = router.dispatch(0.0)[-1]
        victim = first.assignment.worker
        router.crash_worker(victim, 0.5)
        # Backoff: the crashed tickets park instead of requeueing at
        # the crash instant...
        assert [
            a for a in router.dispatch(0.5)
            if isinstance(a, AssignAction)
        ] == []
        assert {d[0] for d in router.decisions} >= {"crash", "park"}
        release = max(d[4] for d in router.decisions if d[0] == "park")
        assert 0.5 < release <= 0.5 + 2 * 0.025 * 1.25
        assert router.next_wake_time(0.5) == pytest.approx(
            min(d[4] for d in router.decisions if d[0] == "park")
        )
        # ...and release deterministically once the backoff elapses.
        retry = [
            a for a in router.dispatch(release)
            if isinstance(a, AssignAction)
        ]
        assert len(retry) == 1
        assert retry[0].assignment.worker != victim  # victim not alive
        # Original submission order survives the park/requeue.
        assert [t.seq for t in retry[0].assignment.tickets] == (
            [t.seq for t in first.assignment.tickets]
        )
        assert router.complete(
            retry[0].assignment, retry[0].epoch, 1.0, OUTCOME_OK
        ) is True
        stats = router.stats()
        assert stats.completed == 2
        assert stats.retries == 2
        assert stats.worker_crashes == 1

    def test_crash_exhausting_retries_quarantines_then_dead_letters(self):
        from repro.errors import PoisonQueryError

        router = self.make(workers=2, max_retries=0)
        full_batch(router)
        actions = router.dispatch(0.0)
        victim = actions[-1].assignment.worker
        router.crash_worker(victim, 0.5)
        router.restart_worker(victim, 0.5)
        # Retry-exhausted tickets are NOT failed outright: they bisect
        # into singleton quarantine cohorts that re-execute solo.
        assert router.drain_failures() == []
        bisects = [d for d in router.decisions if d[0] == "bisect"]
        assert len(bisects) == 1 and bisects[0][3] == 2  # group of 2
        release = bisects[0][6]
        solo = [
            a for a in router.dispatch(release)
            if isinstance(a, AssignAction)
        ]
        assert [a.assignment.size for a in solo] == [1, 1]
        # One cohort completes — its query was innocent all along; the
        # other kills its second worker and is convicted as poison.
        assert router.complete(solo[0].assignment, solo[0].epoch,
                               release + 0.01) is True
        router.crash_worker(solo[1].assignment.worker, release + 0.02)
        failures = router.drain_failures()
        assert len(failures) == 1
        assert isinstance(failures[0][1], PoisonQueryError)
        assert len(router.dlq) == 1
        entry = router.dlq.entries()[0]
        assert entry.model == "m" and entry.attempts == 2
        assert any(d[0] == "dead_letter" for d in router.decisions)
        stats = router.stats()
        assert stats.completed == 1
        assert stats.dead_lettered == 1
        assert stats.failed == 0
        assert stats.submitted == (
            stats.completed + stats.rejected + stats.failed
            + stats.dead_lettered
        )

    def test_restart_with_inflight_batch_refused(self):
        router = self.make()
        full_batch(router)
        actions = router.dispatch(0.0)
        with pytest.raises(ValidationError):
            router.restart_worker(actions[-1].assignment.worker, 0.5)

    def test_draining_restart_reships(self):
        router = self.make(workers=2)
        full_batch(router)
        actions = router.dispatch(0.0)
        assignment = actions[-1].assignment
        target = assignment.worker
        router.drain(target, 0.2)
        assert not router.drained(target)
        # Draining: no new placements on the target, others still serve.
        full_batch(router, now=0.3)
        second = [
            a for a in router.dispatch(0.3)
            if isinstance(a, AssignAction)
        ]
        assert second and second[0].assignment.worker != target
        router.complete(assignment, 0, 0.5)
        router.complete(second[0].assignment, second[0].epoch, 0.5)
        assert router.drained(target)
        new_epoch = router.restart_worker(target, 0.6)
        assert new_epoch == 1
        assert router.shipped[target] == {}  # ledger cleared: re-ship
        decisions = [d[0] for d in router.decisions]
        assert "drain" in decisions and "restart" in decisions

    def test_redeploy_reships_new_fingerprint(self):
        router = self.make(workers=1)
        full_batch(router)
        first = router.dispatch(0.0)
        router.complete(first[-1].assignment, 0, 0.1)
        router.redeploy_model("m", "profile:m/v2", 0.2)
        full_batch(router, now=0.3)
        second = router.dispatch(0.3)
        assert [type(a) for a in second] == [ShipAction, AssignAction]
        assert ("redeploy", "m", "profile:m/v2", 0.2) in router.decisions

    def test_heartbeat_and_health_check(self):
        router = self.make(workers=2, heartbeat_timeout_s=10.0)
        assert router.heartbeat(0, 0, 5.0) is True
        assert router.heartbeat(1, 7, 5.0) is False  # wrong epoch
        # Worker 1's clock still reads its start at t=0: silent too long.
        assert router.check_health(11.0) == [1]
        assert router.heartbeat(1, 0, 11.5) is True
        assert router.check_health(12.0) == []

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValidationError):
            RouterCore(workers=0)
        with pytest.raises(ValidationError):
            RouterCore(workers=1, heartbeat_timeout_s=0.0)
        with pytest.raises(ValidationError):
            ClusterSimRunner([], workers=2)


# ---------------------------------------------------------------------------
# Simulated soaks: determinism, conservation, crash handling
# ---------------------------------------------------------------------------

PROFILES = [
    ModelProfile(name="credit", capacity=4, service_ms=60.0,
                 max_pending=64),
    ModelProfile(name="fraud", capacity=8, service_ms=150.0, weight=2.0,
                 max_pending=64),
]
TENANTS = [
    TenantSpec(name="acme", model="credit", rate_qps=40.0,
               deadline_ms=500.0),
    TenantSpec(name="globex", model="fraud", rate_qps=25.0),
    TenantSpec(name="spiky", model="credit", rate_qps=5.0,
               burst_every_s=1.0, burst_size=12, priority=1),
]


def cluster_soak(seed, queries, workers=3, faults=None, ship_ms=25.0):
    if faults is None:
        duration = queries / 70.0  # ~offered aggregate qps
        faults = FaultPlan(
            worker_crashes=(duration * 0.25, duration * 0.5,
                            duration * 0.75),
            slow_every=7,
            slow_factor=2.5,
        )
    arrivals = generate_arrivals(TENANTS, seed=seed,
                                 total_queries=queries)
    runner = ClusterSimRunner(PROFILES, workers=workers, max_retries=2,
                              ship_ms=ship_ms)
    return runner.run(arrivals, faults)


def assert_conserved(stats):
    assert stats.submitted == (
        stats.completed + stats.rejected + stats.failed + stats.cancelled
        + stats.dead_lettered
    ), "conservation violated"


class TestClusterSimulation:
    def test_same_seed_byte_identical(self):
        a = cluster_soak(seed=7, queries=3000)
        b = cluster_soak(seed=7, queries=3000)
        assert json.dumps(a.decisions) == json.dumps(b.decisions)
        assert a.stats == b.stats
        assert a.packed_order == b.packed_order

    def test_different_seeds_diverge(self):
        a = cluster_soak(seed=7, queries=2000)
        b = cluster_soak(seed=8, queries=2000)
        assert a.decisions != b.decisions

    def test_crashes_recorded_and_conserved(self):
        report = cluster_soak(seed=11, queries=3000)
        assert_conserved(report.stats)
        kinds = {d[0] for d in report.decisions}
        assert {"ship", "assign", "crash", "restart"} <= kinds
        assert report.stats.worker_crashes == 3

    def test_mid_soak_crash_epoch_invalidates_inflight_completion(self):
        # Crash times chosen inside the busy phase: some worker is
        # mid-batch, so its completion must come back stale-epoch.
        report = cluster_soak(seed=3, queries=4000)
        stales = [d for d in report.decisions if d[0] == "stale"]
        crashes = [d for d in report.decisions if d[0] == "crash"]
        assert crashes, "fault plan injected no crashes?"
        assert stales, (
            "no stale completion: crashes never caught a busy worker"
        )
        assert_conserved(report.stats)

    def test_one_vs_many_workers_same_accounting(self):
        # No crashes and unbounded queues: every admitted query
        # completes no matter the pool size — the cluster only changes
        # *where* batches run, never *what* completes.
        profiles = [
            ModelProfile(name="credit", capacity=4, service_ms=60.0),
            ModelProfile(name="fraud", capacity=8, service_ms=150.0,
                         weight=2.0),
        ]
        arrivals = generate_arrivals(TENANTS, seed=21,
                                     total_queries=2500)
        per_pool = {}
        for workers in (1, 4):
            runner = ClusterSimRunner(profiles, workers=workers,
                                      ship_ms=25.0)
            report = runner.run(arrivals, FaultPlan())
            assert_conserved(report.stats)
            per_pool[workers] = report.stats
        assert per_pool[1].submitted == per_pool[4].submitted == 2500
        assert per_pool[1].completed == per_pool[4].completed
        assert per_pool[1].failed == per_pool[4].failed == 0

    def test_acceptance_soak_byte_identical_with_crashes(self):
        """The PR acceptance artifact: a 10^5-query cluster soak with
        seeded mid-run worker crashes replays byte-identically."""
        a = cluster_soak(seed=42, queries=SOAK_QUERIES)
        b = cluster_soak(seed=42, queries=SOAK_QUERIES)
        assert json.dumps(a.decisions) == json.dumps(b.decisions)
        assert a.stats == b.stats
        assert_conserved(a.stats)
        assert a.stats.worker_crashes == 3
        assert a.stats.completed > 0.9 * a.stats.submitted

    def test_runner_is_single_use(self):
        runner = ClusterSimRunner(PROFILES, workers=2)
        arrivals = generate_arrivals(TENANTS, seed=1, total_queries=50)
        runner.run(arrivals)
        with pytest.raises(ValidationError):
            runner.run(arrivals)

    def test_ship_latency_charged_per_worker_epoch(self):
        free = cluster_soak(seed=5, queries=1000, ship_ms=0.0,
                            faults=FaultPlan())
        costly = cluster_soak(seed=5, queries=1000, ship_ms=500.0,
                              faults=FaultPlan())
        ships = sum(1 for d in costly.decisions if d[0] == "ship")
        assert ships >= 2  # two models over the pool
        # Identical routing, but each first batch per (worker, epoch,
        # model) carries the 500 ms shipping charge on its service time.
        assert costly.service_ms_total == pytest.approx(
            free.service_ms_total + 500.0 * ships
        )


# ---------------------------------------------------------------------------
# Spawn-grade pickling: the envelope survives the process boundary
# ---------------------------------------------------------------------------


class TestShippedModelPickle:
    @pytest.fixture()
    def registered(self, example_forest):
        return ModelRegistry().register(
            "pickle-me", example_forest, precision=8, max_batch_size=4,
            backend="vector",
        )

    def test_envelope_round_trips_and_verifies(self, registered):
        envelope = ShippedModel.from_registered(registered)
        # Highest protocol — exactly what multiprocessing spawn uses.
        clone = pickle.loads(
            pickle.dumps(envelope, pickle.HIGHEST_PROTOCOL)
        )
        assert clone.verify() == registered.compiled.fingerprint()
        rebuilt = clone.to_registered()
        assert rebuilt.layout.capacity == registered.layout.capacity
        assert rebuilt.tape.num_instructions == (
            registered.tape.num_instructions
        )

    def test_compiled_tape_round_trips(self, registered):
        from repro.fhe.ciphertext import PlainVector
        from repro.ir.tape import OP_FUSED, FusedSpec

        tape = registered.tape
        clone = pickle.loads(pickle.dumps(tape,
                                          pickle.HIGHEST_PROTOCOL))
        assert clone.model_fingerprint == tape.model_fingerprint
        assert clone.num_slots == tape.num_slots
        assert clone.peak_live == tape.peak_live
        assert len(clone.instructions) == len(tape.instructions)
        fused_seen = 0
        for got, want in zip(clone.instructions, tape.instructions):
            assert got[0] == want[0] and got[1] == want[1]
            if want[0] != OP_FUSED:
                continue
            # Fused specs drop their lazy gather caches in transit
            # (__getstate__) and rebuild worker-side; the terms — the
            # semantics — survive bit-for-bit.
            fused_seen += 1
            spec, orig = got[2], want[2]
            assert isinstance(spec, FusedSpec)
            assert spec.width == orig.width and spec.kind == orig.kind
            assert len(spec.terms) == len(orig.terms)
            for (a1, s1, op1), (a2, s2, op2) in zip(spec.terms,
                                                    orig.terms):
                assert a1 == a2 and s1 == s2
                assert type(op1) is type(op2)
                if isinstance(op1, PlainVector):
                    assert op1.bits() == op2.bits()
                else:
                    assert op1 == op2
        assert fused_seen > 0, "tape has no fused instructions to check"

    def test_tampered_fingerprint_fails_closed(self, registered):
        envelope = ShippedModel.from_registered(registered)
        forged = dataclasses.replace(envelope, fingerprint="f" * 16)
        with pytest.raises(ServeError, match="fails verification"):
            forged.verify()
        with pytest.raises(ServeError):
            forged.to_registered()

    def test_mismatched_tape_fails_closed(self, registered,
                                          small_random_forest):
        other = ModelRegistry().register(
            "other", small_random_forest, precision=8, backend="vector",
        )
        franken = dataclasses.replace(
            ShippedModel.from_registered(registered), tape=other.tape
        )
        with pytest.raises(ServeError, match="tape fingerprint"):
            franken.verify()


# ---------------------------------------------------------------------------
# Real multiprocessing engine (CI selects these with -k real)
# ---------------------------------------------------------------------------


def real_queries(forest, count, seed=21, precision=8):
    import numpy as np

    rng = np.random.default_rng(seed)
    limit = 1 << precision
    return [
        [int(v) for v in rng.integers(0, limit, forest.n_features)]
        for _ in range(count)
    ]


class TestRealCluster:
    def test_real_two_worker_round_trip(self, example_forest):
        """The acceptance smoke: 2 workers, >= 32 queries, every result
        oracle-exact, accounting conserved."""
        queries = real_queries(example_forest, 33)
        with ClusterService(workers=2, backend="vector") as service:
            service.register_model(
                "rt", example_forest, precision=8, max_batch_size=4
            )
            results = service.classify_many("rt", queries)
            stats = service.stats()
        assert len(results) == 33
        for features, res in zip(queries, results):
            assert res.oracle_ok is True
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        assert stats.completed == 33

    def test_real_megakernel_engine_round_trip(self, example_forest):
        """Bugfix lock: workers must seat the shipped megakernel in
        their BatchedCopseServer (evaluate_batch once dropped it, so
        every engine="megakernel" batch failed cluster-side)."""
        queries = real_queries(example_forest, 9, seed=11)
        with ClusterService(workers=2, backend="vector") as service:
            service.register_model(
                "mk", example_forest, precision=8, max_batch_size=4,
                engine="megakernel",
            )
            results = service.classify_many("mk", queries)
            stats = service.stats()
        for features, res in zip(queries, results):
            assert res.oracle_ok is True
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        assert stats.completed == 9

    def test_real_one_vs_two_workers_identical_bits(self, example_forest):
        queries = real_queries(example_forest, 12, seed=5)
        bits = {}
        for workers in (1, 2):
            with ClusterService(workers=workers,
                                backend="vector") as service:
                service.register_model(
                    "bits", example_forest, precision=8, max_batch_size=4
                )
                results = service.classify_many("bits", queries)
                stats = service.stats()
            bits[workers] = [r.bitvector for r in results]
            assert_conserved(stats)
        assert bits[1] == bits[2]

    def test_real_worker_kill_mid_soak_recovers(self, example_forest):
        queries = real_queries(example_forest, 24, seed=9)
        with ClusterService(workers=2, backend="vector",
                            max_retries=3) as service:
            service.register_model(
                "kill", example_forest, precision=8, max_batch_size=4
            )
            futures = [service.submit("kill", q) for q in queries]
            # Kill a live worker process mid-stream, bluntly.
            victim = service._procs[0]
            victim.kill()
            service.flush("kill")
            results = [f.result(timeout=120) for f in futures]
            assert service.drain(timeout=60)
            stats = service.stats()
            decisions = service.decisions
        assert len(results) == 24
        for features, res in zip(queries, results):
            assert res.oracle_ok is True
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        kinds = {d[0] for d in decisions}
        assert "crash" in kinds and "restart" in kinds

    def test_real_sigstop_worker_detected_by_heartbeat(
        self, example_forest
    ):
        """A hung worker (SIGSTOP: pipe stays open, so no EOF arrives)
        must be detected by heartbeat liveness, its in-flight work
        requeued onto the survivor, and accounting conserved."""
        import signal

        queries = real_queries(example_forest, 16, seed=13)
        with ClusterService(workers=2, backend="vector", max_retries=3,
                            heartbeat_interval_s=0.25,
                            heartbeat_timeout_s=2.0) as service:
            service.register_model(
                "hang", example_forest, precision=8, max_batch_size=4
            )
            futures = [service.submit("hang", q) for q in queries]
            victim = service._procs[0]
            os.kill(victim.pid, signal.SIGSTOP)
            service.flush("hang")
            try:
                results = [f.result(timeout=120) for f in futures]
                assert service.drain(timeout=60)
                stats = service.stats()
                decisions = service.decisions
            finally:
                try:
                    os.kill(victim.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
        victim.join(timeout=10)
        assert len(results) == 16
        for features, res in zip(queries, results):
            assert res.bitvector == example_forest.label_bitvector(
                features
            )
        assert_conserved(stats)
        assert stats.worker_crashes >= 1
        assert "crash" in {d[0] for d in decisions}


# ---------------------------------------------------------------------------
# Fault-domain satellites: constructor validation and close-leak
# detection
# ---------------------------------------------------------------------------


class TestClusterGuards:
    def test_sim_rejects_nonpositive_heartbeat_interval(self):
        with pytest.raises(ValidationError,
                           match="heartbeat_interval_s"):
            ClusterSimRunner(PROFILES, workers=2,
                             heartbeat_interval_s=0.0)

    def test_service_rejects_nonpositive_heartbeat_interval(self):
        with pytest.raises(ValidationError,
                           match="heartbeat_interval_s"):
            ClusterService(workers=1, heartbeat_interval_s=-1.0)

    def test_service_rejects_interval_at_or_past_timeout(self):
        with pytest.raises(ValidationError,
                           match="heartbeat_timeout_s"):
            ClusterService(workers=1, heartbeat_interval_s=30.0,
                           heartbeat_timeout_s=10.0)

    def test_close_counts_and_warns_on_leaked_receiver(self):
        service = ClusterService(workers=1, backend="vector")

        class StuckThread:
            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        real = service._receiver
        service._receiver = StuckThread()
        try:
            with pytest.warns(RuntimeWarning, match="receiver thread"):
                service.close()
            assert service.router.metrics.counter_value(
                "cluster_receiver_leaked"
            ) == 1
        finally:
            real.join(timeout=10.0)
        assert not real.is_alive()
