"""Differential property suite: eager vs plan vs tape engines vs oracle.

The plan-compiled execution path (``engine="plan"``) and the compiled
tape (``engine="tape"`` — linearized, register-reused,
rotation-scheduled, kernel-fused) must be bit-identical to the eager
Algorithm 1 interpreter and to the plaintext oracle
(``forest.label_bitvector``) on *every* model and query — the optimizer
may only remove work, never change slots, and register reuse may never
corrupt a live ciphertext.  The megakernel (``engine="megakernel"`` —
the tape compiled once more into vectorized segments over a
preallocated register plane with bulk bookkeeping) joins the same
equivalence class: kernel == tape == plan == eager == oracle.
Hypothesis generates random small forests and feature vectors and
checks all engines against each other, in both the encrypted-model and
plaintext-model configurations, plus the batched serve path
(megakernel-/tape-/plan-/eager-engine services vs oracle).

The oracle check runs under **every registered FHE backend** (the
pluggable-backend redesign's acceptance property: eager == plan ==
plaintext-oracle must hold on ``reference``, ``vector``, and
``plaintext`` alike), and the batched serve check on both the reference
and vector backends.

The ``repro-plan-ci`` profile is fixed (derandomized, >= 200 examples)
so CI runs the exact same case set every time; scale it with
``REPRO_DIFF_EXAMPLES``.  Compiled models and lowered plans are cached
per generated forest so the examples pay for inference, not compilation.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CopseCompiler,
    CopseServer,
    CopseService,
    FheContext,
    available_backends,
    lower_inference,
)
from repro.core.runtime import DataOwner, ModelOwner
from repro.forest.synthetic import random_forest

#: Model/query domain: tiny forests keep 200+ full secure inferences
#: affordable while still varying width, depth, and label structure.
PRECISION = 4
N_FEATURES = 2
FEATURE_LIMIT = 1 << PRECISION

# Registered centrally in tests/conftest.py (one fixed case set for
# every property suite); fetched here so @CI_PROFILE stays declarative.
CI_PROFILE = settings.get_profile("repro-plan-ci")


@lru_cache(maxsize=128)
def model_for(branches_a: int, branches_b: int, depth: int, model_seed: int):
    """Forest + compiled model + plan lowerings + compiled tapes, cached
    per shape."""
    forest = random_forest(
        np.random.default_rng(model_seed),
        branches_per_tree=[branches_a, branches_b],
        max_depth=depth,
        n_features=N_FEATURES,
        precision=PRECISION,
    )
    compiled = CopseCompiler(precision=PRECISION).compile(forest)
    plans = {
        encrypted: lower_inference(compiled, encrypted_model=encrypted)
        for encrypted in (True, False)
    }
    tapes = {
        encrypted: plan.compile_tape() for encrypted, plan in plans.items()
    }
    return forest, compiled, plans, tapes


@lru_cache(maxsize=128)
def megakernel_for(branches_a, branches_b, depth, model_seed):
    """Megakernels compiled from ``model_for``'s cached tapes — cached
    separately so every Hypothesis example reuses the compiled register
    planes (a realistic serve steady state) instead of rebuilding them."""
    from repro.ir.megakernel import compile_megakernel

    _, _, _, tapes = model_for(branches_a, branches_b, depth, model_seed)
    return {
        encrypted: compile_megakernel(tape)
        for encrypted, tape in tapes.items()
    }


@st.composite
def forest_shapes(draw):
    """(branches1, branches2, depth, seed) satisfying the generator's
    shape constraints: a tree fits ``2**depth - 1`` branches and needs
    ``depth`` of them to actually reach that depth."""
    depth = draw(st.integers(min_value=2, max_value=3))
    lo, hi = depth, min(5, (1 << depth) - 1)
    branches_a = draw(st.integers(min_value=lo, max_value=hi))
    branches_b = draw(st.integers(min_value=lo, max_value=hi))
    seed = draw(st.integers(min_value=0, max_value=15))
    return branches_a, branches_b, depth, seed


FOREST_SHAPES = forest_shapes()
FEATURES = st.lists(
    st.integers(min_value=0, max_value=FEATURE_LIMIT - 1),
    min_size=N_FEATURES,
    max_size=N_FEATURES,
)


@pytest.mark.parametrize("backend", available_backends())
@given(shape=FOREST_SHAPES, features=FEATURES)
@CI_PROFILE
def test_eager_plan_and_oracle_agree(backend, shape, features):
    """Eager classify == plan classify == plaintext oracle, on random
    forests and queries, for encrypted and plaintext models alike —
    under every registered FHE backend."""
    forest, compiled, plans, _ = model_for(*shape)
    oracle = forest.label_bitvector(features)

    ctx = FheContext(backend=backend)
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    query = diane.prepare_query(ctx, features)

    for encrypted in (True, False):
        if encrypted:
            model = maurice.encrypt_model(ctx, keys.public)
        else:
            model = maurice.plaintext_model(ctx)

        eager = CopseServer(ctx).classify(model, query)
        assert ctx.decrypt_bits(eager, keys.secret) == oracle, (
            f"eager/{'enc' if encrypted else 'plain'} disagrees with oracle"
        )

        planned = CopseServer(
            ctx, engine="plan", plan=plans[encrypted]
        ).classify(model, query)
        assert ctx.decrypt_bits(planned, keys.secret) == oracle, (
            f"plan/{'enc' if encrypted else 'plain'} disagrees with oracle"
        )


@pytest.mark.parametrize("backend", available_backends())
@given(shape=FOREST_SHAPES, features=FEATURES)
@CI_PROFILE
def test_tape_matches_oracle(backend, shape, features):
    """Compiled-tape classify == plaintext oracle on random forests and
    queries, encrypted and plaintext models alike, under every
    registered FHE backend.  Transitively (previous property) the tape
    also equals the eager and plan engines bit for bit — and since
    register slots are aggressively reused, every passing example is
    also an aliasing check: a reused slot corrupting a live ciphertext
    would flip output bits."""
    forest, compiled, plans, tapes = model_for(*shape)
    oracle = forest.label_bitvector(features)

    ctx = FheContext(backend=backend)
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    query = diane.prepare_query(ctx, features)

    for encrypted in (True, False):
        if encrypted:
            model = maurice.encrypt_model(ctx, keys.public)
        else:
            model = maurice.plaintext_model(ctx)
        taped = CopseServer(
            ctx, engine="tape", tape=tapes[encrypted]
        ).classify(model, query)
        assert ctx.decrypt_bits(taped, keys.secret) == oracle, (
            f"tape/{'enc' if encrypted else 'plain'} disagrees with oracle"
        )


@pytest.mark.parametrize("backend", available_backends())
@given(shape=FOREST_SHAPES, features=FEATURES)
@CI_PROFILE
def test_megakernel_matches_tape_and_oracle(backend, shape, features):
    """Megakernel classify == tape classify == plaintext oracle, with
    byte-identical output metadata (length, noise state, node id), on
    every registered backend.  On the vector backend this exercises the
    compiled register plane + bulk-bookkeeping path; on the reference
    and plaintext backends (no ``megakernel_ops`` capability) it
    exercises the documented tape-loop fallback — the engine must be
    indistinguishable either way."""
    forest, compiled, _, tapes = model_for(*shape)
    kernels = megakernel_for(*shape)
    oracle = forest.label_bitvector(features)

    ctx = FheContext(backend=backend)
    keys = ctx.keygen()
    maurice = ModelOwner(compiled)
    diane = DataOwner(maurice.query_spec(), keys)
    query = diane.prepare_query(ctx, features)

    for encrypted in (True, False):
        if encrypted:
            model = maurice.encrypt_model(ctx, keys.public)
        else:
            model = maurice.plaintext_model(ctx)
        taped = CopseServer(
            ctx, engine="tape", tape=tapes[encrypted]
        ).classify(model, query)
        kerneled = CopseServer(
            ctx, engine="megakernel", megakernel=kernels[encrypted]
        ).classify(model, query)
        label = "enc" if encrypted else "plain"
        assert ctx.decrypt_bits(kerneled, keys.secret) == oracle, (
            f"megakernel/{label} disagrees with oracle"
        )
        assert (
            ctx.decrypt_bits(kerneled, keys.secret)
            == ctx.decrypt_bits(taped, keys.secret)
        ), f"megakernel/{label} disagrees with tape"
        assert kerneled.length == taped.length
        assert kerneled.noise == taped.noise


@pytest.mark.parametrize("backend", ["reference", "vector"])
@pytest.mark.parametrize("encrypted_model", [True, False])
@given(
    shape=FOREST_SHAPES,
    query_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(
    max_examples=15, derandomize=True, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batched_serve_engines_agree(
    backend, encrypted_model, shape, query_seed
):
    """The serve registry's megakernel, tape, and plan engines and the
    eager batched runtime produce identical per-query bitvectors on
    packed batches — for encrypted models and for plaintext models
    (where the lowering bakes the tiled model in as graph constants),
    on the reference and vector backends alike (the megakernel engine
    exercises its compiled plane on vector and its tape-loop fallback
    on reference)."""
    forest, compiled, _, _ = model_for(*shape)
    rng = np.random.default_rng(query_seed)
    queries = [
        [int(v) for v in rng.integers(0, FEATURE_LIMIT, N_FEATURES)]
        for _ in range(3)
    ]
    oracle = [forest.label_bitvector(q) for q in queries]

    outputs = {}
    for engine in ("megakernel", "tape", "plan", "eager"):
        with CopseService(threads=1, engine=engine, backend=backend) as service:
            service.register_model(
                "m", compiled, max_batch_size=2,
                encrypted_model=encrypted_model,
            )
            results = service.classify_many("m", queries)
        assert all(r.oracle_ok for r in results), f"{engine} failed oracle"
        outputs[engine] = [r.bitvector for r in results]

    assert (
        outputs["megakernel"]
        == outputs["tape"]
        == outputs["plan"]
        == outputs["eager"]
        == oracle
    )


@pytest.mark.parametrize("encrypted_model", [True, False])
def test_plan_refuses_foreign_model(encrypted_model):
    """A plan lowered for model A must refuse a shape-identical model B
    (plaintext-model plans bake A's structures in, so silently serving B
    would return A's labels)."""
    from repro.errors import RuntimeProtocolError
    from repro.core.runtime import DataOwner as _DataOwner
    from repro.forest.forest import DecisionForest
    from repro.forest.node import Branch, Leaf
    from repro.forest.tree import DecisionTree

    def forest_with_threshold(threshold):
        tree = DecisionTree(
            root=Branch(0, threshold, Leaf(1), Leaf(0))
        )
        return DecisionForest(
            trees=[tree], label_names=["low", "high"], n_features=1
        )

    compiled_a = CopseCompiler(precision=8).compile(forest_with_threshold(100))
    compiled_b = CopseCompiler(precision=8).compile(forest_with_threshold(200))
    plan_a = lower_inference(compiled_a, encrypted_model=encrypted_model)

    ctx = FheContext()
    keys = ctx.keygen()
    maurice_b = ModelOwner(compiled_b)
    query = _DataOwner(maurice_b.query_spec(), keys).prepare_query(ctx, [150])
    if encrypted_model:
        model_b = maurice_b.encrypt_model(ctx, keys.public)
    else:
        model_b = maurice_b.plaintext_model(ctx)

    server = CopseServer(ctx, engine="plan", plan=plan_a)
    with pytest.raises(RuntimeProtocolError, match="different|model"):
        server.classify(model_b, query)

    # The right model still classifies (and matches the oracle).
    maurice_a = ModelOwner(compiled_a)
    model_a = (
        maurice_a.encrypt_model(ctx, keys.public)
        if encrypted_model
        else maurice_a.plaintext_model(ctx)
    )
    result = server.classify(model_a, query)
    expected = forest_with_threshold(100).label_bitvector([150])
    assert ctx.decrypt_bits(result, keys.secret) == expected
