"""Backend-conformance suite: every registered backend, same semantics.

The :class:`~repro.fhe.backend.FheBackend` protocol promises that every
backend produces identical bits, identical protocol errors, and (unless
``noise_fidelity == "none"``) identical noise failures.  This suite
parametrizes the op-semantics checks over **every registered backend**
and additionally cross-checks each backend against the reference
simulator op by op, so ``reference``, ``vector``, and ``plaintext``
provably agree — and any third-party backend registered before the
suite runs is held to the same contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DomainError,
    KeyMismatchError,
    NoiseBudgetExceededError,
    ParameterError,
    SlotCapacityError,
)
from repro.fhe import (
    Ciphertext,
    CountingTracker,
    EncryptionParams,
    FheBackend,
    FheContext,
    OpKind,
    OpTracker,
    PlainVector,
    PlaintextFheContext,
    VectorFheContext,
    available_backends,
    backend_description,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)

BACKENDS = available_backends()
NOISY_BACKENDS = [
    name
    for name in BACKENDS
    if getattr(resolve_backend(name), "noise_fidelity", "exact") != "none"
]


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


@pytest.fixture
def bctx(backend) -> FheContext:
    return FheContext(backend=backend)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert {"reference", "vector", "plaintext"} <= set(BACKENDS)

    def test_descriptions_exist(self):
        for name in ("reference", "vector", "plaintext"):
            assert backend_description(name)

    def test_unknown_backend_raises(self):
        with pytest.raises(ParameterError, match="unknown FHE backend"):
            get_backend("no-such-engine")
        with pytest.raises(ParameterError, match="unknown FHE backend"):
            FheContext(backend="no-such-engine")

    def test_duplicate_registration_guarded(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_backend("reference", FheContext)

    def test_non_callable_factory_rejected(self):
        with pytest.raises(ParameterError, match="callable"):
            register_backend("broken", object())

    def test_register_replace_unregister_cycle(self):
        class StubContext(VectorFheContext):
            backend_name = "conformance-stub"

        try:
            register_backend("conformance-stub", StubContext)
            assert "conformance-stub" in available_backends()
            ctx = FheContext(backend="conformance-stub")
            assert type(ctx) is StubContext
            assert ctx.backend_name == "conformance-stub"
            register_backend("conformance-stub", StubContext, replace=True)
        finally:
            unregister_backend("conformance-stub")
        assert "conformance-stub" not in available_backends()

    def test_non_subclass_factory_supported(self):
        """A registered plain callable works, even when it returns an
        FheContext-derived instance under an alias name — the factory's
        construction stands, __init__ is not re-run on it."""

        def factory(params=None, tracker=None):
            ctx = VectorFheContext(params, tracker)
            ctx.factory_made = True
            return ctx

        try:
            register_backend("aliased-vector", factory)
            ctx = FheContext(
                EncryptionParams(bits=500), backend="aliased-vector"
            )
            assert type(ctx) is VectorFheContext
            assert ctx.factory_made  # construction survived __init__
            assert ctx.params.bits == 500
            keys = ctx.keygen()
            ct = ctx.encrypt([1, 0, 1], keys.public)
            assert ctx.decrypt_bits(ct, keys.secret) == [1, 0, 1]
        finally:
            unregister_backend("aliased-vector")

    def test_unregistered_builtin_restores_on_demand(self):
        unregister_backend("vector")
        try:
            assert type(FheContext(backend="vector")) is VectorFheContext
            assert "vector" in available_backends()
        finally:
            # Restoration is permanent, but be explicit for test isolation.
            assert "vector" in available_backends()

    def test_default_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "vector")
        assert default_backend() == "vector"
        assert type(FheContext()) is VectorFheContext

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vector")
        assert type(FheContext(backend="reference")) is FheContext


# ---------------------------------------------------------------------------
# Construction and protocol shape
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_context_satisfies_protocol(self, bctx):
        assert isinstance(bctx, FheBackend)

    def test_backend_name_matches(self, backend, bctx):
        assert bctx.backend_name == backend
        assert bctx.noise_fidelity in ("exact", "aggregate", "none")

    def test_builtin_backends_are_contexts(self, bctx):
        assert isinstance(bctx, FheContext)

    def test_direct_subclass_construction(self):
        assert type(VectorFheContext()) is VectorFheContext
        assert type(PlaintextFheContext()) is PlaintextFheContext

    def test_conflicting_backend_kwarg_rejected(self):
        with pytest.raises(ParameterError, match="implements backend"):
            VectorFheContext(backend="reference")

    def test_params_travel(self, backend):
        params = EncryptionParams(bits=500)
        ctx = FheContext(params, backend=backend)
        assert ctx.params is params

    def test_explicit_tracker_honored(self, backend):
        tracker = OpTracker()
        ctx = FheContext(tracker=tracker, backend=backend)
        assert ctx.tracker is tracker


# ---------------------------------------------------------------------------
# Op semantics: each backend against numpy and against reference
# ---------------------------------------------------------------------------


def _pair(backend):
    """A backend context and a reference context on the same inputs."""
    return FheContext(backend=backend), FheContext(backend="reference")


def _bits(rng, n):
    return rng.integers(0, 2, n).tolist()


class TestOpConformance:
    def test_roundtrip(self, bctx):
        keys = bctx.keygen()
        bits = [1, 0, 1, 1, 0, 0, 1]
        ct = bctx.encrypt(bits, keys.public)
        assert bctx.decrypt_bits(ct, keys.secret) == bits
        assert all(isinstance(b, int) for b in bctx.decrypt_bits(ct, keys.secret))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_op_matches_reference(self, backend, seed):
        """One mixed program, op by op, against the reference backend."""
        rng = np.random.default_rng(seed)
        ctx, ref = _pair(backend)
        keys, ref_keys = ctx.keygen(), ref.keygen()
        n = 12

        a_bits, b_bits, plain_bits = (_bits(rng, n) for _ in range(3))
        a, ra = ctx.encrypt(a_bits, keys.public), ref.encrypt(a_bits, ref_keys.public)
        b, rb = ctx.encrypt(b_bits, keys.public), ref.encrypt(b_bits, ref_keys.public)
        p, rp = ctx.encode(plain_bits), ref.encode(plain_bits)

        steps = [
            (lambda c, x, y, q: c.add(x, y)),
            (lambda c, x, y, q: c.multiply(x, y)),
            (lambda c, x, y, q: c.const_add(x, q)),
            (lambda c, x, y, q: c.const_mult(x, q)),
            (lambda c, x, y, q: c.rotate(x, 3)),
            (lambda c, x, y, q: c.rotate(x, -2)),
            (lambda c, x, y, q: c.rotate(x, 0)),
            (lambda c, x, y, q: c.cyclic_extend(x, 30)),
            (lambda c, x, y, q: c.truncate(x, 5)),
            (lambda c, x, y, q: c.negate(x)),
            (lambda c, x, y, q: c.xor_any(x, q)),
            (lambda c, x, y, q: c.and_any(q, x)),
            (lambda c, x, y, q: c.multiply_all([x, y, x])),
            (lambda c, x, y, q: c.xor_all([x, y, q])),
        ]
        for i, step in enumerate(steps):
            out = step(ctx, a, b, p)
            ref_out = step(ref, ra, rb, rp)
            got = ctx.decrypt_bits(out, keys.secret)
            want = ref.decrypt_bits(ref_out, ref_keys.secret)
            assert got == want, f"step {i} disagrees with reference"
            assert len(out) == len(ref_out)

    def test_plain_plain_stays_plaintext(self, bctx):
        x = bctx.encode([1, 0, 1])
        y = bctx.encode([1, 1, 0])
        assert isinstance(bctx.xor_any(x, y), PlainVector)
        assert isinstance(bctx.and_any(x, y), PlainVector)
        assert bctx.rotate_any(x, 1) == x.rotated(1)
        assert bctx.negate(x).bits() == [0, 1, 0]

    def test_ones_zeros(self, bctx):
        assert bctx.ones(4).bits() == [1, 1, 1, 1]
        assert bctx.zeros(3).bits() == [0, 0, 0]

    def test_adopt_across_contexts(self, backend):
        source = FheContext(backend=backend)
        keys = source.keygen()
        ct = source.encrypt([1, 0, 1], keys.public)
        target = FheContext(backend=backend)
        adopted = target.adopt(ct)
        assert target.decrypt_bits(adopted, keys.secret) == [1, 0, 1]
        assert target.tracker.count(OpKind.LOAD) == 1
        # Adoption preserves key identity and noise state.
        assert adopted.key_id == ct.key_id
        assert adopted.noise.effective_depth == ct.noise.effective_depth

    def test_key_mismatch_raises(self, bctx):
        k1, k2 = bctx.keygen(), bctx.keygen()
        a = bctx.encrypt([1, 0], k1.public)
        b = bctx.encrypt([0, 1], k2.public)
        with pytest.raises(KeyMismatchError):
            bctx.add(a, b)
        with pytest.raises(KeyMismatchError):
            bctx.multiply(a, b)
        with pytest.raises(KeyMismatchError):
            bctx.decrypt(a, k2.secret)

    def test_length_mismatch_raises(self, bctx):
        keys = bctx.keygen()
        a = bctx.encrypt([1, 0, 1], keys.public)
        b = bctx.encrypt([1, 0], keys.public)
        with pytest.raises(SlotCapacityError):
            bctx.add(a, b)
        with pytest.raises(SlotCapacityError):
            bctx.const_add(a, bctx.encode([1, 0]))
        with pytest.raises(SlotCapacityError):
            bctx.const_mult(a, bctx.encode([1, 0]))

    def test_width_overflow_raises(self, bctx):
        keys = bctx.keygen()
        too_wide = bctx.params.slot_count + 1
        with pytest.raises(SlotCapacityError):
            bctx.encrypt([1] * too_wide, keys.public)
        ct = bctx.encrypt([1, 0], keys.public)
        with pytest.raises(SlotCapacityError):
            bctx.cyclic_extend(ct, too_wide)
        with pytest.raises(SlotCapacityError):
            bctx.truncate(ct, 5)
        with pytest.raises(SlotCapacityError):
            bctx.cyclic_extend(ct, 1)

    def test_domain_errors(self, bctx):
        keys = bctx.keygen()
        with pytest.raises(DomainError):
            bctx.encrypt([0, 2, 1], keys.public)
        with pytest.raises(DomainError):
            bctx.encode([0, -1])
        with pytest.raises(DomainError):
            bctx.multiply_all([])
        with pytest.raises(DomainError):
            bctx.xor_all([])


# ---------------------------------------------------------------------------
# Noise semantics
# ---------------------------------------------------------------------------


SHALLOW = EncryptionParams(bits=160)  # depth capacity 4


def _multiply_until_failure(ctx, limit=64):
    keys = ctx.keygen()
    x = ctx.encrypt([1, 1, 0], keys.public)
    for i in range(limit):
        try:
            x = ctx.multiply(x, x)
        except NoiseBudgetExceededError:
            return i
    return None


class TestNoiseSemantics:
    @pytest.mark.parametrize("noisy", NOISY_BACKENDS)
    def test_budget_fails_at_reference_point(self, noisy):
        reference_failure = _multiply_until_failure(
            FheContext(SHALLOW, backend="reference")
        )
        assert reference_failure is not None
        assert (
            _multiply_until_failure(FheContext(SHALLOW, backend=noisy))
            == reference_failure
        )

    @pytest.mark.parametrize("noisy", NOISY_BACKENDS)
    def test_slack_accumulation_matches_reference(self, noisy):
        """Rotation/const slack crosses level thresholds identically."""

        def run(name):
            ctx = FheContext(SHALLOW, backend=name)
            keys = ctx.keygen()
            x = ctx.encrypt([1, 0, 1], keys.public)
            depths = []
            for i in range(120):
                try:
                    x = ctx.rotate(x, 1)
                    x = ctx.const_mult(x, ctx.encode([1, 1, 1]))
                except NoiseBudgetExceededError:
                    return (i, depths)
                depths.append(x.noise.effective_depth)
            return (None, depths)

        assert run(noisy) == run("reference")

    @pytest.mark.parametrize("noisy", NOISY_BACKENDS)
    def test_depth_headroom_and_bootstrap(self, noisy):
        ctx = FheContext(backend=noisy)
        ref = FheContext(backend="reference")
        for c in (ctx, ref):
            keys = c.keygen()
            x = c.encrypt([1, 1], keys.public)
            assert c.depth_headroom(x) == c.noise_model.capacity
            y = c.multiply(x, x)
            assert c.depth_headroom(y) == c.noise_model.capacity - 1
            z = c.bootstrap(y)
            assert z.noise.level == 0
            assert c.decrypt_bits(z, keys.secret) == [1, 1]

    def test_plaintext_backend_never_exhausts(self):
        ctx = FheContext(SHALLOW, backend="plaintext")
        assert _multiply_until_failure(ctx, limit=32) is None
        # ... and still decrypts correctly at absurd depth.
        keys = ctx.keygen()
        x = ctx.encrypt([1, 0], keys.public)
        for _ in range(32):
            x = ctx.multiply(x, x)
        assert ctx.decrypt_bits(x, keys.secret) == [1, 0]


# ---------------------------------------------------------------------------
# Tracker parity
# ---------------------------------------------------------------------------


def _run_phased_program(ctx):
    keys = ctx.keygen()
    with ctx.tracker.phase("setup"):
        a = ctx.encrypt([1, 0, 1, 1], keys.public)
        b = ctx.encrypt([0, 1, 1, 0], keys.public)
    with ctx.tracker.phase("work"):
        c = ctx.multiply(a, b)
        d = ctx.add(c, a)
        e = ctx.rotate(d, 2)
        f = ctx.multiply(e, c)
        g = ctx.bootstrap(f)
        h = ctx.multiply(g, g)
    ctx.decrypt(h, keys.secret)
    return ctx


class TestTrackerParity:
    def test_phase_counts_match_reference(self, backend):
        got = _run_phased_program(FheContext(backend=backend)).tracker
        want = _run_phased_program(FheContext(backend="reference")).tracker
        assert got.phases == want.phases
        for phase in want.phases:
            assert (
                got.phase_stats(phase).as_dict()
                == want.phase_stats(phase).as_dict()
            ), f"phase {phase} counts diverge"
        assert got.total_counts() == want.total_counts()

    def test_multiplicative_depth_matches_reference(self, backend):
        got = _run_phased_program(FheContext(backend=backend)).tracker
        want = _run_phased_program(FheContext(backend="reference")).tracker
        assert got.multiplicative_depth() == want.multiplicative_depth()

    def test_sequential_cost_matches_reference(self, backend):
        from repro.fhe import CostModel

        cost = CostModel(EncryptionParams.paper_defaults())
        got = _run_phased_program(FheContext(backend=backend)).tracker
        want = _run_phased_program(FheContext(backend="reference")).tracker
        assert cost.sequential_ms(got) == pytest.approx(
            cost.sequential_ms(want)
        )
        assert cost.phase_sequential_ms(got, "work") == pytest.approx(
            cost.phase_sequential_ms(want, "work")
        )


class TestCountingTracker:
    def test_depth_recurrence(self):
        t = CountingTracker()
        a = t.record(OpKind.ENCRYPT)
        b = t.record(OpKind.ENCRYPT)
        c = t.record(OpKind.MULTIPLY, (a, b))
        d = t.record(OpKind.ADD, (c, a))
        e = t.record(OpKind.MULTIPLY, (d, c))
        assert t.multiplicative_depth() == 2
        t.record(OpKind.BOOTSTRAP, (e,))
        assert t.multiplicative_depth() == 2
        assert t.num_nodes == 6

    def test_work_equals_span_without_dag(self):
        t = CountingTracker()
        t.record(OpKind.MULTIPLY)
        t.record(OpKind.ROTATE)
        cost = {OpKind.MULTIPLY: 2.0, OpKind.ROTATE: 1.0}
        work, span = t.work_and_span(lambda k: cost[k])
        assert work == span == 3.0
        assert t.dag_level_count() == 0
        assert t.trace() == []

    def test_reset(self):
        t = CountingTracker()
        with t.phase("p"):
            t.record(OpKind.MULTIPLY, (0,))
        assert t.count(OpKind.MULTIPLY) == 1
        t.reset()
        assert t.count(OpKind.MULTIPLY) == 0
        assert t.multiplicative_depth() == 0
        assert t.num_nodes == 0
        # Still usable after reset (the active-phase cache re-arms).
        t.record(OpKind.ADD)
        assert t.count(OpKind.ADD) == 1


# ---------------------------------------------------------------------------
# End-to-end: the live pipeline on every backend
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_secure_inference_oracle(self, backend, compiled_example,
                                     example_forest):
        from repro.core.runtime import secure_inference

        features = [40, 200]
        outcome = secure_inference(
            compiled_example, features, backend=backend
        )
        assert outcome.backend == backend
        assert outcome.result.bitvector == example_forest.label_bitvector(
            features
        )

    def test_serve_batch_oracle(self, backend, compiled_example,
                                example_forest):
        from repro.serve import CopseService

        queries = [[40, 200], [17, 3], [250, 90]]
        with CopseService(threads=1, backend=backend) as service:
            service.register_model("m", example_forest, precision=8)
            results = service.classify_many("m", queries)
            stats = service.stats()
        assert all(r.oracle_ok for r in results)
        assert stats.model_backends == {"m": backend}

    def test_explicit_ctx_conflicting_backend_rejected(
        self, compiled_example
    ):
        from repro.errors import RuntimeProtocolError
        from repro.core.runtime import secure_inference

        ctx = FheContext(backend="vector")
        with pytest.raises(RuntimeProtocolError, match="implements backend"):
            secure_inference(
                compiled_example, [1, 2], ctx=ctx, backend="reference"
            )
