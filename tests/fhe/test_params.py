"""Tests for encryption-parameter handling."""

import pytest

from repro.errors import ParameterError
from repro.fhe.params import (
    EncryptionParams,
    PAPER_PARAMS,
    REFERENCE_BITS,
    REFERENCE_COLUMNS,
    REFERENCE_SECURITY,
    SLOTS_PER_COLUMN,
    parameter_grid,
)


class TestValidation:
    def test_paper_defaults(self):
        assert PAPER_PARAMS.security == 128
        assert PAPER_PARAMS.bits == 400
        assert PAPER_PARAMS.columns == 3

    def test_unsupported_security_rejected(self):
        with pytest.raises(ParameterError):
            EncryptionParams(security=100)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            EncryptionParams(bits=32)

    def test_zero_columns_rejected(self):
        with pytest.raises(ParameterError):
            EncryptionParams(columns=0)

    def test_excessive_columns_rejected(self):
        with pytest.raises(ParameterError):
            EncryptionParams(columns=64)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_PARAMS.bits = 100  # type: ignore[misc]


class TestDerivedQuantities:
    def test_slot_count_scales_with_columns(self):
        one = EncryptionParams(columns=1)
        three = EncryptionParams(columns=3)
        assert three.slot_count == 3 * one.slot_count
        assert one.slot_count == SLOTS_PER_COLUMN

    def test_depth_capacity_grows_with_bits(self):
        small = EncryptionParams(bits=200)
        large = EncryptionParams(bits=600)
        assert large.depth_capacity > small.depth_capacity

    def test_depth_capacity_shrinks_with_security(self):
        weak = EncryptionParams(security=80, bits=400)
        strong = EncryptionParams(security=192, bits=400)
        assert weak.depth_capacity > strong.depth_capacity

    def test_paper_depth_capacity_fits_prec16(self):
        # prec16's circuit needs depth 2*log2(16) + 1 + 2 + log2(5) = 14.
        assert PAPER_PARAMS.depth_capacity >= 14

    def test_size_factor_reference_is_one(self):
        reference = EncryptionParams(
            security=REFERENCE_SECURITY,
            bits=REFERENCE_BITS,
            columns=REFERENCE_COLUMNS,
        )
        assert reference.size_factor == pytest.approx(1.0)

    def test_size_factor_monotone_in_bits(self):
        assert (
            EncryptionParams(bits=600).size_factor
            > EncryptionParams(bits=400).size_factor
        )

    def test_supports_depth_and_width(self):
        assert PAPER_PARAMS.supports_depth(PAPER_PARAMS.depth_capacity)
        assert not PAPER_PARAMS.supports_depth(PAPER_PARAMS.depth_capacity + 1)
        assert PAPER_PARAMS.supports_width(1)
        assert PAPER_PARAMS.supports_width(PAPER_PARAMS.slot_count)
        assert not PAPER_PARAMS.supports_width(PAPER_PARAMS.slot_count + 1)
        assert not PAPER_PARAMS.supports_width(0)

    def test_describe_mentions_key_values(self):
        text = PAPER_PARAMS.describe()
        assert "128" in text and "400" in text


class TestGrid:
    def test_grid_covers_paper_point(self):
        grid = list(parameter_grid())
        assert PAPER_PARAMS in grid

    def test_grid_size(self):
        grid = list(parameter_grid())
        assert len(grid) == 3 * 5 * 4

    def test_custom_grid(self):
        grid = list(
            parameter_grid(
                security_levels=(128,),
                bits_options=(400,),
                columns_options=(1, 2),
            )
        )
        assert len(grid) == 2
        assert all(p.security == 128 for p in grid)
