"""Tests for the FHE context: primitive ops, keys, combinators."""

import numpy as np
import pytest

from repro.errors import (
    DomainError,
    KeyMismatchError,
    SlotCapacityError,
)
from repro.fhe.ciphertext import Ciphertext, PlainVector
from repro.fhe.context import FheContext
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx, keys):
        bits = [1, 0, 1, 1, 0]
        ct = ctx.encrypt(bits, keys.public)
        assert ctx.decrypt_bits(ct, keys.secret) == bits

    def test_wrong_key_rejected(self, ctx, keys):
        other = ctx.keygen()
        ct = ctx.encrypt([1, 0], keys.public)
        with pytest.raises(KeyMismatchError):
            ctx.decrypt(ct, other.secret)

    def test_non_bit_plaintext_rejected(self, ctx, keys):
        with pytest.raises(DomainError):
            ctx.encrypt([0, 2, 1], keys.public)

    def test_oversized_vector_rejected(self, ctx, keys):
        too_wide = [0] * (ctx.params.slot_count + 1)
        with pytest.raises(SlotCapacityError):
            ctx.encrypt(too_wide, keys.public)

    def test_ciphertext_repr_redacts_payload(self, ctx, keys):
        ct = ctx.encrypt([1, 1, 1], keys.public)
        assert "encrypted" in repr(ct)
        assert "1, 1, 1" not in repr(ct)

    def test_encrypt_plain_helper(self, ctx, keys):
        plain = ctx.encode([0, 1, 0])
        ct = ctx.encrypt_plain(plain, keys.public)
        assert ctx.decrypt_bits(ct, keys.secret) == [0, 1, 0]


class TestHomomorphicOps:
    def test_add_is_xor(self, ctx, keys):
        a = ctx.encrypt([1, 0, 1, 0], keys.public)
        b = ctx.encrypt([1, 1, 0, 0], keys.public)
        assert ctx.decrypt_bits(ctx.add(a, b), keys.secret) == [0, 1, 1, 0]

    def test_multiply_is_and(self, ctx, keys):
        a = ctx.encrypt([1, 0, 1, 0], keys.public)
        b = ctx.encrypt([1, 1, 0, 0], keys.public)
        assert ctx.decrypt_bits(ctx.multiply(a, b), keys.secret) == [1, 0, 0, 0]

    def test_const_ops(self, ctx, keys):
        a = ctx.encrypt([1, 0, 1], keys.public)
        plain = ctx.encode([1, 1, 0])
        assert ctx.decrypt_bits(ctx.const_add(a, plain), keys.secret) == [0, 1, 1]
        assert ctx.decrypt_bits(ctx.const_mult(a, plain), keys.secret) == [1, 0, 0]

    def test_rotate_is_cyclic_left(self, ctx, keys):
        ct = ctx.encrypt([1, 0, 0, 0], keys.public)
        assert ctx.decrypt_bits(ctx.rotate(ct, 1), keys.secret) == [0, 0, 0, 1]
        assert ctx.decrypt_bits(ctx.rotate(ct, 3), keys.secret) == [0, 1, 0, 0]

    def test_rotate_zero_is_identity_and_free(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        before = ctx.tracker.count(OpKind.ROTATE)
        assert ctx.rotate(ct, 0) is ct
        assert ctx.tracker.count(OpKind.ROTATE) == before

    def test_cross_key_ops_rejected(self, ctx, keys):
        other = ctx.keygen()
        a = ctx.encrypt([1, 0], keys.public)
        b = ctx.encrypt([1, 0], other.public)
        with pytest.raises(KeyMismatchError):
            ctx.add(a, b)
        with pytest.raises(KeyMismatchError):
            ctx.multiply(a, b)

    def test_length_mismatch_rejected(self, ctx, keys):
        a = ctx.encrypt([1, 0], keys.public)
        b = ctx.encrypt([1, 0, 1], keys.public)
        with pytest.raises(SlotCapacityError):
            ctx.add(a, b)

    def test_multiply_tracks_depth(self, ctx, keys):
        a = ctx.encrypt([1], keys.public)
        b = ctx.encrypt([1], keys.public)
        product = ctx.multiply(a, b)
        assert product.noise.level == 1
        deeper = ctx.multiply(product, product)
        assert deeper.noise.level == 2


class TestShapeHelpers:
    def test_cyclic_extend(self, ctx, keys):
        ct = ctx.encrypt([1, 0, 1], keys.public)
        extended = ctx.cyclic_extend(ct, 7)
        assert ctx.decrypt_bits(extended, keys.secret) == [1, 0, 1, 1, 0, 1, 1]

    def test_cyclic_extend_same_length_is_free(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        before = ctx.tracker.count(OpKind.ROTATE)
        assert ctx.cyclic_extend(ct, 2) is ct
        assert ctx.tracker.count(OpKind.ROTATE) == before

    def test_cyclic_extend_shrinking_rejected(self, ctx, keys):
        ct = ctx.encrypt([1, 0, 1], keys.public)
        with pytest.raises(SlotCapacityError):
            ctx.cyclic_extend(ct, 2)

    def test_truncate(self, ctx, keys):
        ct = ctx.encrypt([1, 0, 1, 1], keys.public)
        assert ctx.decrypt_bits(ctx.truncate(ct, 2), keys.secret) == [1, 0]

    def test_truncate_growing_rejected(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        with pytest.raises(SlotCapacityError):
            ctx.truncate(ct, 3)


class TestMixedDispatch:
    def test_xor_any_all_combinations(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        pt = ctx.encode([1, 1])
        assert ctx.decrypt_bits(ctx.xor_any(ct, ct), keys.secret) == [0, 0]
        assert ctx.decrypt_bits(ctx.xor_any(ct, pt), keys.secret) == [0, 1]
        assert ctx.decrypt_bits(ctx.xor_any(pt, ct), keys.secret) == [0, 1]
        plain = ctx.xor_any(pt, pt)
        assert isinstance(plain, PlainVector)
        assert plain.bits() == [0, 0]

    def test_and_any_all_combinations(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        pt = ctx.encode([1, 1])
        assert ctx.decrypt_bits(ctx.and_any(ct, pt), keys.secret) == [1, 0]
        assert ctx.decrypt_bits(ctx.and_any(pt, ct), keys.secret) == [1, 0]
        plain = ctx.and_any(pt, pt)
        assert isinstance(plain, PlainVector)
        assert plain.bits() == [1, 1]

    def test_rotate_any_plain_is_free(self, ctx):
        pt = ctx.encode([1, 0, 0])
        before = ctx.tracker.count(OpKind.ROTATE)
        rotated = ctx.rotate_any(pt, 1)
        assert rotated.bits() == [0, 0, 1]
        assert ctx.tracker.count(OpKind.ROTATE) == before


class TestCombinators:
    def test_multiply_all_matches_reduce(self, ctx, keys):
        rng = np.random.default_rng(3)
        vectors = [
            ctx.encrypt(rng.integers(0, 2, 6), keys.public) for _ in range(5)
        ]
        result = ctx.multiply_all(vectors)
        expected = np.ones(6, dtype=np.uint8)
        for v in vectors:
            expected &= np.array(ctx.decrypt(v, keys.secret))
        assert ctx.decrypt_bits(result, keys.secret) == list(expected)

    def test_multiply_all_depth_is_logarithmic(self, ctx, keys):
        vectors = [ctx.encrypt([1, 1], keys.public) for _ in range(8)]
        result = ctx.multiply_all(vectors)
        assert result.noise.level == 3  # log2(8)

    def test_multiply_all_single(self, ctx, keys):
        ct = ctx.encrypt([1, 0], keys.public)
        assert ctx.multiply_all([ct]) is ct

    def test_multiply_all_empty_rejected(self, ctx):
        with pytest.raises(DomainError):
            ctx.multiply_all([])

    def test_xor_all(self, ctx, keys):
        vectors = [
            ctx.encrypt([1, 0, 0], keys.public),
            ctx.encrypt([1, 1, 0], keys.public),
            ctx.encrypt([0, 1, 1], keys.public),
        ]
        assert ctx.decrypt_bits(ctx.xor_all(vectors), keys.secret) == [0, 0, 1]

    def test_negate(self, ctx, keys):
        ct = ctx.encrypt([1, 0, 1], keys.public)
        assert ctx.decrypt_bits(ctx.negate(ct), keys.secret) == [0, 1, 0]
        pt = ctx.encode([0, 1])
        assert ctx.negate(pt).bits() == [1, 0]

    def test_ones_zeros(self, ctx):
        assert ctx.ones(3).bits() == [1, 1, 1]
        assert ctx.zeros(2).bits() == [0, 0]
