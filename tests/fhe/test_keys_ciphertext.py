"""Tests for key material and ciphertext/plaintext value types."""

import numpy as np
import pytest

from repro.errors import DomainError, SlotCapacityError
from repro.fhe.ciphertext import Ciphertext, PlainVector, coerce_bits
from repro.fhe.keys import KeyPair
from repro.fhe.noise import NoiseState


class TestKeys:
    def test_generate_matching_pair(self):
        pair = KeyPair.generate(128)
        assert pair.secret.matches(pair.public)
        assert pair.key_id == pair.public.key_id

    def test_distinct_pairs_do_not_match(self):
        a = KeyPair.generate(128)
        b = KeyPair.generate(128)
        assert a.key_id != b.key_id
        assert not a.secret.matches(b.public)

    def test_secret_repr_redacted(self):
        pair = KeyPair.generate(128)
        assert "redacted" in repr(pair.secret)

    def test_keypair_repr_hides_secret(self):
        pair = KeyPair.generate(128)
        assert "secret" not in repr(pair).lower() or "redacted" in repr(pair)


class TestCoerceBits:
    def test_list_and_array(self):
        assert coerce_bits([1, 0, 1]).tolist() == [1, 0, 1]
        assert coerce_bits(np.array([True, False])).tolist() == [1, 0]

    def test_rejects_non_bits(self):
        with pytest.raises(DomainError):
            coerce_bits([0, 1, 2])

    def test_rejects_floats(self):
        with pytest.raises(DomainError):
            coerce_bits(np.array([0.5, 1.0]))

    def test_rejects_matrix(self):
        with pytest.raises(DomainError):
            coerce_bits(np.zeros((2, 2), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            coerce_bits([])


class TestPlainVector:
    def test_length_and_bits(self):
        v = PlainVector([1, 0, 1, 1])
        assert len(v) == 4
        assert v.bits() == [1, 0, 1, 1]

    def test_rotated(self):
        v = PlainVector([1, 0, 0])
        assert v.rotated(1).bits() == [0, 0, 1]

    def test_equality(self):
        assert PlainVector([1, 0]) == PlainVector([1, 0])
        assert PlainVector([1, 0]) != PlainVector([0, 1])

    def test_immutable(self):
        v = PlainVector([1, 0])
        arr = v.to_array()
        arr[0] = 0
        assert v.bits() == [1, 0]

    def test_repr_preview(self):
        v = PlainVector([1] * 20)
        assert "..." in repr(v)


class TestCiphertextType:
    def _make(self, bits, length=None):
        arr = np.array(bits, dtype=np.uint8)
        return Ciphertext(
            slots=arr,
            length=arr.size if length is None else length,
            key_id=1,
            noise=NoiseState(),
            node_id=0,
        )

    def test_invalid_length_rejected(self):
        with pytest.raises(SlotCapacityError):
            self._make([1, 0], length=5)
        with pytest.raises(SlotCapacityError):
            self._make([1, 0], length=0)

    def test_unique_ids(self):
        a = self._make([1])
        b = self._make([1])
        assert a.ciphertext_id != b.ciphertext_id

    def test_metadata_visible(self):
        ct = self._make([1, 0, 1])
        assert ct.length == 3
        assert ct.key_id == 1
        assert ct.noise.level == 0
