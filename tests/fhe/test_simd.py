"""Tests for bit-slicing and replication helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DomainError
from repro.fhe.simd import from_bitplanes, replicate, to_bitplanes


class TestBitplanes:
    def test_msb_first_layout(self):
        planes = to_bitplanes([5], 4)  # 0101
        assert planes[:, 0].tolist() == [0, 1, 0, 1]

    def test_roundtrip_examples(self):
        values = [0, 1, 127, 128, 255]
        assert from_bitplanes(to_bitplanes(values, 8)) == values

    def test_value_too_large_rejected(self):
        with pytest.raises(DomainError):
            to_bitplanes([16], 4)

    def test_negative_rejected(self):
        with pytest.raises(DomainError):
            to_bitplanes([-1], 4)

    def test_zero_precision_rejected(self):
        with pytest.raises(DomainError):
            to_bitplanes([0], 0)

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            to_bitplanes([], 4)

    def test_shape(self):
        planes = to_bitplanes([1, 2, 3], 6)
        assert planes.shape == (6, 3)
        assert planes.dtype == np.uint8

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        assert from_bitplanes(to_bitplanes(values, 8)) == values

    @given(
        st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property_16bit(self, values):
        assert from_bitplanes(to_bitplanes(values, 16)) == values

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=20)
    )
    @settings(max_examples=40, deadline=None)
    def test_lexicographic_equals_numeric(self, values):
        """MSB-first planes compare lexicographically as the values do."""
        planes = to_bitplanes(values, 8)
        a, b = values[0], values[1]
        col_a = tuple(planes[:, 0])
        col_b = tuple(planes[:, 1])
        assert (col_a < col_b) == (a < b)


class TestReplicate:
    def test_basic(self):
        assert replicate([1, 2], 3) == [1, 1, 1, 2, 2, 2]

    def test_multiplicity_one(self):
        assert replicate([4, 5, 6], 1) == [4, 5, 6]

    def test_zero_multiplicity_rejected(self):
        with pytest.raises(DomainError):
            replicate([1], 0)

    @given(
        st.lists(st.integers(), max_size=10),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_length_property(self, values, k):
        out = replicate(values, k)
        assert len(out) == len(values) * k
        for i, v in enumerate(values):
            assert out[i * k : (i + 1) * k] == [v] * k
