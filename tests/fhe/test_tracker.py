"""Tests for operation tracking: counts, phases, DAG analyses."""

import pytest

from repro.fhe.tracker import OpKind, OpTracker, UNSCOPED_PHASE


@pytest.fixture
def tracker():
    return OpTracker()


class TestCounts:
    def test_record_and_count(self, tracker):
        tracker.record(OpKind.ENCRYPT)
        tracker.record(OpKind.ADD, parents=(0,))
        tracker.record(OpKind.ADD, parents=(0,))
        assert tracker.count(OpKind.ENCRYPT) == 1
        assert tracker.count(OpKind.ADD) == 2
        assert tracker.count(OpKind.MULTIPLY) == 0

    def test_phase_scoping(self, tracker):
        tracker.record(OpKind.ENCRYPT)
        with tracker.phase("comparison"):
            tracker.record(OpKind.MULTIPLY, parents=(0,))
        with tracker.phase("levels"):
            tracker.record(OpKind.MULTIPLY, parents=(1,))
            tracker.record(OpKind.ADD, parents=(2,))
        assert tracker.count(OpKind.MULTIPLY, "comparison") == 1
        assert tracker.count(OpKind.MULTIPLY, "levels") == 1
        assert tracker.count(OpKind.ENCRYPT, UNSCOPED_PHASE) == 1
        assert tracker.phases == [UNSCOPED_PHASE, "comparison", "levels"]

    def test_nested_phases_attribute_to_innermost(self, tracker):
        with tracker.phase("outer"):
            tracker.record(OpKind.ADD)
            with tracker.phase("inner"):
                tracker.record(OpKind.MULTIPLY)
        assert tracker.count(OpKind.ADD, "outer") == 1
        assert tracker.count(OpKind.MULTIPLY, "inner") == 1
        assert tracker.count(OpKind.MULTIPLY, "outer") == 0

    def test_total_counts(self, tracker):
        with tracker.phase("a"):
            tracker.record(OpKind.ADD)
        with tracker.phase("b"):
            tracker.record(OpKind.ADD)
        assert tracker.total_counts()[OpKind.ADD] == 2

    def test_phase_stats_as_dict(self, tracker):
        with tracker.phase("x"):
            tracker.record(OpKind.MULTIPLY)
            tracker.record(OpKind.ADD)
        stats = tracker.phase_stats("x")
        assert stats.as_dict() == {"add": 1, "multiply": 1}
        assert stats.total_ops == 2

    def test_reset(self, tracker):
        tracker.record(OpKind.ENCRYPT)
        tracker.reset()
        assert tracker.num_nodes == 0
        assert tracker.total_counts() == {}


class TestDagAnalyses:
    def test_multiplicative_depth_chain(self, tracker):
        a = tracker.record(OpKind.ENCRYPT)
        b = tracker.record(OpKind.ENCRYPT)
        m1 = tracker.record(OpKind.MULTIPLY, parents=(a, b))
        m2 = tracker.record(OpKind.MULTIPLY, parents=(m1, b))
        tracker.record(OpKind.ADD, parents=(m2, a))
        assert tracker.multiplicative_depth() == 2

    def test_depth_ignores_parallel_multiplies(self, tracker):
        a = tracker.record(OpKind.ENCRYPT)
        for _ in range(10):
            tracker.record(OpKind.MULTIPLY, parents=(a, a))
        assert tracker.multiplicative_depth() == 1

    def test_work_and_span(self, tracker):
        cost = {OpKind.ENCRYPT: 0.0, OpKind.MULTIPLY: 1.0, OpKind.ADD: 0.5}
        a = tracker.record(OpKind.ENCRYPT)
        m1 = tracker.record(OpKind.MULTIPLY, parents=(a,))
        m2 = tracker.record(OpKind.MULTIPLY, parents=(a,))
        tracker.record(OpKind.ADD, parents=(m1, m2))
        work, span = tracker.work_and_span(lambda k: cost[k])
        assert work == pytest.approx(2.5)
        # Critical path: encrypt(0) -> multiply(1) -> add(0.5).
        assert span == pytest.approx(1.5)

    def test_work_and_span_phase_filter(self, tracker):
        cost = {OpKind.ENCRYPT: 100.0, OpKind.MULTIPLY: 1.0}
        with tracker.phase("setup"):
            a = tracker.record(OpKind.ENCRYPT)
        with tracker.phase("inference"):
            tracker.record(OpKind.MULTIPLY, parents=(a,))
        work, span = tracker.work_and_span(
            lambda k: cost[k], phases=("inference",)
        )
        assert work == pytest.approx(1.0)
        assert span == pytest.approx(1.0)

    def test_dag_level_count(self, tracker):
        a = tracker.record(OpKind.ENCRYPT)
        b = tracker.record(OpKind.ADD, parents=(a,))
        tracker.record(OpKind.ADD, parents=(b,))
        tracker.record(OpKind.ADD, parents=(a,))  # parallel with b
        assert tracker.dag_level_count() == 3

    def test_dag_level_count_empty(self, tracker):
        assert tracker.dag_level_count() == 0

    def test_dag_level_count_phase_filter(self, tracker):
        with tracker.phase("setup"):
            a = tracker.record(OpKind.ENCRYPT)
        with tracker.phase("work"):
            tracker.record(OpKind.ADD, parents=(a,))
        assert tracker.dag_level_count(phases=("work",)) == 1


class TestTrace:
    def test_trace_structure(self, tracker):
        a = tracker.record(OpKind.ENCRYPT)
        with tracker.phase("comparison"):
            tracker.record(OpKind.ADD, parents=(a,))
        trace = tracker.trace()
        assert trace == [
            ("encrypt", UNSCOPED_PHASE, ()),
            ("add", "comparison", (0,)),
        ]

    def test_trace_is_deterministic_copy(self, tracker):
        tracker.record(OpKind.ENCRYPT)
        t1 = tracker.trace()
        t2 = tracker.trace()
        assert t1 == t2
        assert t1 is not t2
