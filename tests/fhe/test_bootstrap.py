"""Tests for bootstrapping (Section 2.2.1) and its COPSE integration."""

import pytest

from repro.errors import CompileError, NoiseBudgetExceededError
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.fhe.context import FheContext
from repro.fhe.costmodel import CostModel
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind

from tests.conftest import build_example_tree


class TestBootstrapPrimitive:
    def test_resets_noise(self, ctx, keys):
        a = ctx.encrypt([1, 0, 1], keys.public)
        b = ctx.encrypt([1, 1, 1], keys.public)
        for _ in range(5):
            a = ctx.multiply(a, b)
        assert a.noise.level == 5
        refreshed = ctx.bootstrap(a)
        assert refreshed.noise.level == 0
        assert ctx.decrypt_bits(refreshed, keys.secret) == [1, 0, 1]

    def test_enables_unbounded_depth(self, keys):
        """A multiply chain far past the chain capacity succeeds when
        bootstrapping at the capacity boundary."""
        params = EncryptionParams(bits=200)  # capacity 5
        ctx = FheContext(params)
        pair = ctx.keygen()
        a = ctx.encrypt([1, 1], pair.public)
        b = ctx.encrypt([1, 0], pair.public)
        for _ in range(4 * params.depth_capacity):
            if ctx.depth_headroom(a) < 1:
                a = ctx.bootstrap(a)
            a = ctx.multiply(a, b)
        assert ctx.decrypt_bits(a, pair.secret) == [1, 0]

    def test_without_bootstrap_same_chain_fails(self):
        params = EncryptionParams(bits=200)
        ctx = FheContext(params)
        pair = ctx.keygen()
        a = ctx.encrypt([1, 1], pair.public)
        b = ctx.encrypt([1, 0], pair.public)
        with pytest.raises(NoiseBudgetExceededError):
            for _ in range(4 * params.depth_capacity):
                a = ctx.multiply(a, b)

    def test_cannot_bootstrap_dead_ciphertext(self, ctx, keys):
        from repro.fhe.noise import NoiseState
        from repro.fhe.ciphertext import Ciphertext
        import numpy as np

        dead = Ciphertext(
            slots=np.array([1], dtype=np.uint8),
            length=1,
            key_id=keys.public.key_id,
            noise=NoiseState(level=ctx.noise_model.capacity + 1),
            node_id=ctx.tracker.record(OpKind.ENCRYPT),
        )
        with pytest.raises(NoiseBudgetExceededError):
            ctx.bootstrap(dead)

    def test_cost_is_two_orders_above_multiply(self):
        model = CostModel(EncryptionParams.paper_defaults())
        assert model.cost_of(OpKind.BOOTSTRAP) >= (
            50 * model.cost_of(OpKind.MULTIPLY)
        )

    def test_depth_headroom(self, ctx, keys):
        a = ctx.encrypt([1], keys.public)
        assert ctx.depth_headroom(a) == ctx.noise_model.capacity
        b = ctx.multiply(a, a)
        assert ctx.depth_headroom(b) == ctx.noise_model.capacity - 1


class TestAutoBootstrapInference:
    @pytest.fixture
    def deep_compiled(self, example_forest):
        # prec16's circuit needs depth 14; bits=300 caps at 9.
        return CopseCompiler(precision=16).compile(example_forest)

    def test_short_chain_rejected_without_bootstrap(self, deep_compiled):
        short = EncryptionParams(bits=300)
        with pytest.raises(CompileError, match="depth"):
            secure_inference(deep_compiled, [10, 10], params=short)

    def test_short_chain_works_with_bootstrap(
        self, deep_compiled, example_forest
    ):
        short = EncryptionParams(bits=300)
        outcome = secure_inference(
            deep_compiled, [10, 10], params=short, auto_bootstrap=True
        )
        assert outcome.result.bitvector == example_forest.label_bitvector(
            [10, 10]
        )
        assert outcome.tracker.count(OpKind.BOOTSTRAP) == 1
        assert "bootstrap" in outcome.tracker.phases

    def test_no_bootstrap_when_headroom_sufficient(self, example_forest):
        compiled = CopseCompiler(precision=8).compile(example_forest)
        outcome = secure_inference(
            compiled, [10, 10], auto_bootstrap=True
        )
        # Paper parameters have plenty of headroom: no bootstrap fires.
        assert outcome.tracker.count(OpKind.BOOTSTRAP) == 0

    def test_bootstrap_correct_on_many_inputs(self, deep_compiled, example_forest):
        import numpy as np

        short = EncryptionParams(bits=300)
        rng = np.random.default_rng(0)
        for _ in range(5):
            feats = [int(v) for v in rng.integers(0, 65536, 2)]
            # Features beyond 8 bits are legal at precision 16; the
            # oracle uses the same integer comparisons.
            outcome = secure_inference(
                deep_compiled, feats, params=short, auto_bootstrap=True
            )
            assert outcome.result.bitvector == (
                example_forest.label_bitvector(feats)
            )

    def test_bootstrapping_not_worth_it_here(self, deep_compiled):
        """The paper's implicit finding: a longer chain beats
        bootstrapping.  bits=400 without bootstrapping is cheaper than
        bits=300 with it, despite the smaller ciphertexts."""
        short = EncryptionParams(bits=300)
        long = EncryptionParams(bits=400)
        with_bootstrap = secure_inference(
            deep_compiled, [10, 10], params=short, auto_bootstrap=True
        )
        without = secure_inference(deep_compiled, [10, 10], params=long)

        phases = ("comparison", "bootstrap", "reshuffle", "levels", "accumulate")
        cost_short = CostModel(short).sequential_ms(
            with_bootstrap.tracker, phases=phases
        )
        cost_long = CostModel(long).sequential_ms(
            without.tracker, phases=phases
        )
        assert cost_long < cost_short
