"""Property-based tests for noise accounting and circuit invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NoiseBudgetExceededError
from repro.fhe.context import FheContext
from repro.fhe.noise import NoiseModel, NoiseState
from repro.fhe.params import EncryptionParams


@st.composite
def op_sequences(draw):
    """Random sequences of homomorphic operation kinds."""
    return draw(
        st.lists(
            st.sampled_from(["add", "const_add", "const_mult", "rotate", "mult"]),
            min_size=0,
            max_size=40,
        )
    )


class TestNoiseProperties:
    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_effective_depth_monotone(self, ops):
        """No operation ever *reduces* the effective depth."""
        model = NoiseModel(EncryptionParams(bits=600))  # generous budget
        state = model.fresh()
        other = model.fresh()
        previous = state.effective_depth
        try:
            for op in ops:
                if op == "add":
                    state = model.after_add(state, other)
                elif op == "const_add":
                    state = model.after_const_add(state)
                elif op == "const_mult":
                    state = model.after_const_mult(state)
                elif op == "rotate":
                    state = model.after_rotate(state)
                else:
                    state = model.after_multiply(state, other)
                assert state.effective_depth >= previous
                previous = state.effective_depth
        except NoiseBudgetExceededError:
            pass  # budget exhaustion is allowed; monotonicity held so far

    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_depth_bounded_by_mult_count(self, ops):
        """Effective depth never exceeds the multiply count plus the
        slack contribution of the cheap operations."""
        model = NoiseModel(EncryptionParams(bits=600))
        state = model.fresh()
        other = model.fresh()
        mults = 0
        try:
            for op in ops:
                if op == "mult":
                    state = model.after_multiply(state, other)
                    mults += 1
                elif op == "add":
                    state = model.after_add(state, other)
                elif op == "const_add":
                    state = model.after_const_add(state)
                elif op == "const_mult":
                    state = model.after_const_mult(state)
                else:
                    state = model.after_rotate(state)
        except NoiseBudgetExceededError:
            return
        # Slack from <= 40 cheap ops is < 1 level at the configured rates.
        assert state.effective_depth <= mults + 2

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiply_depth_is_max_plus_one(self, la, lb):
        model = NoiseModel(EncryptionParams(bits=600))
        capacity = model.capacity
        if max(la, lb) + 1 > capacity:
            with pytest.raises(NoiseBudgetExceededError):
                model.after_multiply(NoiseState(level=la), NoiseState(level=lb))
        else:
            out = model.after_multiply(NoiseState(level=la), NoiseState(level=lb))
            assert out.level == max(la, lb) + 1


class TestCircuitNoiseInvariants:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_measured_level_equals_dag_depth(self, seed):
        """The per-ciphertext noise level always equals the tracker's
        multiplicative depth along that ciphertext's history."""
        rng = np.random.default_rng(seed)
        ctx = FheContext(EncryptionParams(bits=600))
        keys = ctx.keygen()
        pool = [ctx.encrypt(rng.integers(0, 2, 4), keys.public) for _ in range(3)]
        for _ in range(15):
            a = pool[rng.integers(0, len(pool))]
            b = pool[rng.integers(0, len(pool))]
            choice = rng.integers(0, 3)
            if choice == 0:
                pool.append(ctx.add(a, b))
            elif choice == 1:
                pool.append(ctx.multiply(a, b))
            else:
                pool.append(ctx.rotate(a, int(rng.integers(1, 4))))
        deepest = max(ct.noise.level for ct in pool)
        assert deepest == ctx.tracker.multiplicative_depth()
