"""Tests for the calibrated cost model."""

import pytest

from repro.fhe.costmodel import CostModel, DEFAULT_OP_COSTS_MS
from repro.fhe.params import EncryptionParams
from repro.fhe.tracker import OpKind, OpTracker


@pytest.fixture
def model():
    return CostModel(EncryptionParams.paper_defaults())


def _toy_tracker():
    tracker = OpTracker()
    with tracker.phase("setup"):
        a = tracker.record(OpKind.ENCRYPT)
        b = tracker.record(OpKind.ENCRYPT)
    with tracker.phase("work"):
        m = tracker.record(OpKind.MULTIPLY, parents=(a, b))
        tracker.record(OpKind.MULTIPLY, parents=(a, b))
        tracker.record(OpKind.ADD, parents=(m,))
    return tracker


class TestCosts:
    def test_reference_costs_unscaled(self, model):
        for kind, base in DEFAULT_OP_COSTS_MS.items():
            assert model.cost_of(kind) == pytest.approx(base)

    def test_costs_scale_with_params(self):
        big = CostModel(EncryptionParams(bits=600, columns=4))
        small = CostModel(EncryptionParams.paper_defaults())
        assert big.cost_of(OpKind.MULTIPLY) > small.cost_of(OpKind.MULTIPLY)

    def test_multiply_dominates(self, model):
        assert model.cost_of(OpKind.MULTIPLY) > model.cost_of(OpKind.ROTATE)
        assert model.cost_of(OpKind.ROTATE) > model.cost_of(OpKind.ADD)
        assert model.cost_of(OpKind.CONST_MULT) < model.cost_of(OpKind.MULTIPLY)


class TestEstimates:
    def test_sequential_is_total_work(self, model):
        tracker = _toy_tracker()
        expected = (
            2 * model.cost_of(OpKind.ENCRYPT)
            + 2 * model.cost_of(OpKind.MULTIPLY)
            + model.cost_of(OpKind.ADD)
        )
        assert model.sequential_ms(tracker) == pytest.approx(expected)

    def test_phase_filtered_sequential(self, model):
        tracker = _toy_tracker()
        work_only = model.sequential_ms(tracker, phases=("work",))
        expected = 2 * model.cost_of(OpKind.MULTIPLY) + model.cost_of(OpKind.ADD)
        assert work_only == pytest.approx(expected)

    def test_phase_sequential_single(self, model):
        tracker = _toy_tracker()
        assert model.phase_sequential_ms(tracker, "setup") == pytest.approx(
            2 * model.cost_of(OpKind.ENCRYPT)
        )

    def test_multithreaded_never_beats_span(self, model):
        tracker = _toy_tracker()
        est = model.estimate(tracker, threads=1000)
        assert est.multithreaded_ms >= est.span_ms

    def test_multithreaded_faster_for_wide_dag(self, model):
        tracker = OpTracker()
        a = tracker.record(OpKind.ENCRYPT)
        for _ in range(500):
            tracker.record(OpKind.MULTIPLY, parents=(a,))
        est = model.estimate(tracker, threads=32)
        assert est.multithreaded_ms < est.sequential_ms
        assert est.parallel_speedup > 2

    def test_single_thread_cap(self, model):
        tracker = _toy_tracker()
        est = model.estimate(tracker, threads=1)
        # A 1-thread "pool" degenerates to sequential plus barrier cost.
        assert est.multithreaded_ms >= est.sequential_ms

    def test_estimate_fields_consistent(self, model):
        tracker = _toy_tracker()
        est = model.estimate(tracker, threads=8)
        assert est.work_ms == pytest.approx(model.sequential_ms(tracker))
        assert est.barriers == tracker.dag_level_count()
        assert est.parallel_speedup == pytest.approx(
            est.sequential_ms / est.multithreaded_ms
        )
