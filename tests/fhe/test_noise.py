"""Tests for the BGV-style noise model."""

import pytest

from repro.errors import NoiseBudgetExceededError
from repro.fhe.noise import NoiseModel, NoiseState
from repro.fhe.params import EncryptionParams


@pytest.fixture
def model():
    return NoiseModel(EncryptionParams.paper_defaults())


class TestStateCombinators:
    def test_fresh_state_is_clean(self, model):
        state = model.fresh()
        assert state.level == 0
        assert state.effective_depth == 0

    def test_multiply_consumes_a_level(self, model):
        a = model.fresh()
        b = model.fresh()
        assert model.after_multiply(a, b).level == 1

    def test_multiply_takes_deeper_operand(self, model):
        deep = NoiseState(level=3)
        shallow = NoiseState(level=1)
        assert model.after_multiply(deep, shallow).level == 4

    def test_add_preserves_level(self, model):
        a = NoiseState(level=2)
        b = NoiseState(level=1)
        out = model.after_add(a, b)
        assert out.level == 2
        assert out.slack > 0

    def test_rotate_and_const_ops_add_slack_only(self, model):
        state = model.fresh()
        for combinator in (
            model.after_rotate,
            model.after_const_add,
            model.after_const_mult,
        ):
            out = combinator(state)
            assert out.level == 0
            assert out.slack > 0

    def test_slack_accumulates_into_effective_depth(self, model):
        state = model.fresh()
        # Rotations add 0.01 slack each; 100 of them consume one level.
        for _ in range(100):
            state = model.after_rotate(state)
        assert state.effective_depth == 1


class TestBudgetEnforcement:
    def test_capacity_matches_params(self, model):
        assert model.capacity == EncryptionParams.paper_defaults().depth_capacity

    def test_multiplying_past_capacity_raises(self, model):
        state = model.fresh()
        other = model.fresh()
        for _ in range(model.capacity):
            state = model.after_multiply(state, other)
        with pytest.raises(NoiseBudgetExceededError):
            model.after_multiply(state, other)

    def test_check_decryptable_at_capacity(self, model):
        ok = NoiseState(level=model.capacity)
        model.check_decryptable(ok)  # no raise
        bad = NoiseState(level=model.capacity + 1)
        with pytest.raises(NoiseBudgetExceededError):
            model.check_decryptable(bad)

    def test_small_params_fail_fast(self):
        tiny = NoiseModel(EncryptionParams(bits=100))
        state = tiny.fresh()
        other = tiny.fresh()
        with pytest.raises(NoiseBudgetExceededError):
            for _ in range(tiny.capacity + 1):
                state = tiny.after_multiply(state, other)

    def test_error_message_is_actionable(self, model):
        state = NoiseState(level=model.capacity)
        with pytest.raises(NoiseBudgetExceededError, match="increase `bits`"):
            model.after_multiply(state, model.fresh())
