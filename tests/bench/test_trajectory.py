"""The consolidated perf-trajectory artifact (BENCH_TRAJECTORY.json).

``repro bench trajectory`` globs every ``BENCH_<n>.json``, validates
each against the bench schema, and consolidates them — a malformed
artifact must fail loudly with its path, never be skipped.
"""

import json

import pytest

from repro.errors import ValidationError
from repro.bench_harness.report_gen import (
    BENCH_SCHEMA,
    discover_bench_artifacts,
    generate_trajectory,
)


def write_artifact(directory, index, experiments=None, **overrides):
    payload = {
        "schema": BENCH_SCHEMA,
        "artifact": f"BENCH_{index}",
        "mode": "full",
        "default_backend": "reference",
        "engine_profiles": [
            {
                "shape": "batched",
                "engine": "tape",
                "instructions": 100 + index,
                "peak_live": 50,
                "cost_ms": 12.5,
            },
        ],
        "experiments": experiments if experiments is not None else [
            {
                "section": "soak",
                "title": "t",
                "columns": ["a", "b"],
                "rows": [[1, 2]],
                "notes": [],
            },
        ],
    }
    payload.update(overrides)
    path = directory / f"BENCH_{index}.json"
    path.write_text(json.dumps(payload))
    return path


class TestDiscovery:
    def test_finds_indexed_artifacts_only(self, tmp_path):
        write_artifact(tmp_path, 3)
        write_artifact(tmp_path, 10)
        (tmp_path / "BENCH_TRAJECTORY.json").write_text("{}")
        (tmp_path / "BENCH_extra.json").write_text("{}")
        found = discover_bench_artifacts(str(tmp_path))
        assert [index for index, _ in found] == [3, 10]

    def test_no_artifacts_is_an_error(self, tmp_path):
        with pytest.raises(ValidationError, match="no BENCH"):
            generate_trajectory(str(tmp_path), json_path=None)


class TestConsolidation:
    def test_entries_and_table(self, tmp_path):
        write_artifact(tmp_path, 2)
        write_artifact(tmp_path, 5)
        out = tmp_path / "BENCH_TRAJECTORY.json"
        path, table = generate_trajectory(
            str(tmp_path), json_path=str(out)
        )
        assert path == str(out)
        payload = json.loads(out.read_text())
        assert payload["artifact"] == "BENCH_TRAJECTORY"
        assert [e["index"] for e in payload["entries"]] == [2, 5]
        assert payload["entries"][0]["sections"] == ["soak"]
        assert (
            payload["entries"][1]["batched_tape_profile"]["instructions"]
            == 105
        )
        assert [row[0] for row in table.rows] == [2, 5]

    def test_repo_artifacts_consolidate(self):
        # The checked-in BENCH_<n>.json files must always validate.
        _, table = generate_trajectory(".", json_path=None)
        assert len(table.rows) >= 1


class TestValidation:
    def test_wrong_schema_fails_with_path(self, tmp_path):
        write_artifact(tmp_path, 1, schema=99)
        with pytest.raises(ValidationError, match="BENCH_1.json"):
            generate_trajectory(str(tmp_path), json_path=None)

    def test_missing_field_fails(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ValidationError, match="missing field"):
            generate_trajectory(str(tmp_path), json_path=None)

    def test_ragged_rows_fail(self, tmp_path):
        write_artifact(tmp_path, 1, experiments=[
            {
                "section": "soak",
                "title": "t",
                "columns": ["a", "b"],
                "rows": [[1, 2, 3]],
                "notes": [],
            },
        ])
        with pytest.raises(ValidationError, match="row width"):
            generate_trajectory(str(tmp_path), json_path=None)

    def test_malformed_record_fails(self, tmp_path):
        write_artifact(tmp_path, 1, experiments=[{"section": "soak"}])
        with pytest.raises(ValidationError, match="missing"):
            generate_trajectory(str(tmp_path), json_path=None)
