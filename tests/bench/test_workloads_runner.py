"""Tests for the benchmark workloads and runner."""

import pytest

from repro.errors import ValidationError
from repro.bench_harness.runner import (
    InferenceRunner,
    RunnerConfig,
    SYSTEM_BASELINE,
    SYSTEM_COPSE,
    run_workload,
)
from repro.bench_harness.workloads import (
    all_workloads,
    microbenchmark_workloads,
    real_world_workloads,
    workload_by_name,
)


class TestWorkloads:
    def test_suite_composition(self):
        micro = microbenchmark_workloads()
        real = real_world_workloads()
        assert [w.name for w in micro] == [
            "depth4", "depth5", "depth6", "width55", "width78",
            "width677", "prec8", "prec16",
        ]
        assert [w.name for w in real] == [
            "soccer5", "income5", "soccer15", "income15",
        ]
        assert len(all_workloads()) == 12

    def test_workload_by_name_cached(self):
        a = workload_by_name("depth4")
        b = workload_by_name("depth4")
        assert a is b
        assert a.forest is b.forest

    def test_unknown_workload(self):
        with pytest.raises(ValidationError):
            workload_by_name("depth99")

    def test_micro_workload_forest_matches_spec(self):
        w = workload_by_name("width677")
        assert w.forest.n_trees == 3
        assert w.forest.branching == 20
        assert w.precision == 8

    def test_query_features_deterministic_and_in_domain(self):
        w = workload_by_name("prec16")
        a = w.query_features(5)
        b = w.query_features(5)
        assert a == b
        limit = 1 << 16
        for feats in a:
            assert len(feats) == w.forest.n_features
            assert all(0 <= v < limit for v in feats)

    def test_compiled_cached(self):
        w = workload_by_name("depth5")
        assert w.compiled is w.compiled


class TestRunnerConfig:
    def test_defaults(self):
        cfg = RunnerConfig()
        assert cfg.system == SYSTEM_COPSE
        assert cfg.queries == 27
        assert cfg.threads == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            RunnerConfig(system="gpu")
        with pytest.raises(ValidationError):
            RunnerConfig(threads=0)
        with pytest.raises(ValidationError):
            RunnerConfig(queries=0)


class TestRunner:
    def test_copse_record(self):
        record = run_workload(workload_by_name("width55"), SYSTEM_COPSE, queries=2)
        assert record.correct
        assert record.median_ms > 0
        assert len(record.per_query_ms) == 2
        assert set(record.phase_ms) == {
            "comparison", "bootstrap", "reshuffle", "levels", "accumulate",
        }
        assert record.phase_ms["bootstrap"] == 0.0  # never fires here
        assert record.op_counts["multiply"] > 0
        assert record.multiplicative_depth > 0

    def test_baseline_record(self):
        record = run_workload(
            workload_by_name("width55"), SYSTEM_BASELINE, queries=2
        )
        assert record.correct
        assert set(record.phase_ms) == {"comparison", "polynomial"}

    def test_queries_have_identical_cost(self):
        """Noninterference at the harness level: every query of a batch
        costs exactly the same."""
        record = run_workload(workload_by_name("depth4"), SYSTEM_COPSE, queries=3)
        assert len(set(record.per_query_ms)) == 1

    def test_multithreaded_is_faster(self):
        w = workload_by_name("width78")
        single = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_COPSE, queries=1, threads=1)
        ).run()
        multi = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_COPSE, queries=1, threads=32)
        ).run()
        assert multi.median_ms < single.median_ms

    def test_plaintext_model_is_faster(self):
        w = workload_by_name("width78")
        enc = InferenceRunner(
            w, RunnerConfig(system=SYSTEM_COPSE, queries=1)
        ).run()
        plain = InferenceRunner(
            w,
            RunnerConfig(system=SYSTEM_COPSE, queries=1, encrypted_model=False),
        ).run()
        assert plain.median_ms < enc.median_ms

    def test_work_span_sanity(self):
        record = run_workload(workload_by_name("depth4"), SYSTEM_COPSE, queries=1)
        assert 0 < record.span_ms < record.work_ms
        assert record.median_ms == pytest.approx(record.work_ms)
