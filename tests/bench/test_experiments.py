"""Tests for the experiment entry points (on the fast micro subset).

These verify the *paper-claimed shapes* on microbenchmarks; the full-suite
numbers (including real-world models) are produced by ``benchmarks/``.
"""

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import Table, geometric_mean

MICRO = ["depth4", "depth5", "depth6", "width55", "width78", "prec8", "prec16"]
FAST = ["depth4", "width55", "prec16"]


class TestFigure6:
    def test_copse_always_wins(self):
        table = experiments.figure6(queries=1, workload_names=FAST)
        for speedup in table.column("speedup"):
            assert speedup > 2.0

    def test_precision_gives_largest_speedup(self):
        table = experiments.figure6(
            queries=1, workload_names=["prec8", "prec16"]
        )
        assert table.row("prec16")[3] > table.row("prec8")[3]

    def test_copse_times_in_paper_band(self):
        """Paper microbenchmark medians range 39.8-64.2 ms."""
        table = experiments.figure6(queries=1, workload_names=MICRO)
        for ms in table.column("copse_ms"):
            assert 25.0 < ms < 90.0


class TestFigure7:
    def test_multithreading_helps(self):
        table = experiments.figure7(queries=1, workload_names=FAST)
        for speedup in table.column("speedup"):
            assert speedup > 1.5

    def test_micro_speedup_band(self):
        """Paper: micro parallel speedups are modest (~2.5-4x)."""
        table = experiments.figure7(queries=1, workload_names=MICRO)
        for speedup in table.column("speedup"):
            assert 1.5 < speedup < 6.0


class TestFigure8:
    def test_copse_still_wins_multithreaded_but_less(self):
        fig6 = experiments.figure6(queries=1, workload_names=FAST)
        fig8 = experiments.figure8(queries=1, workload_names=FAST)
        for name in FAST:
            s6 = fig6.row(name)[3]
            s8 = fig8.row(name)[3]
            assert s8 > 1.0  # COPSE still faster
            assert s8 < s6  # the baseline scales better (paper Sec 8.2)


class TestFigure9:
    def test_plaintext_speedup_band(self):
        """Paper: plaintext models are ~1.4x faster (sequential)."""
        table = experiments.figure9(queries=1, workload_names=FAST)
        for speedup in table.column("speedup"):
            assert 1.05 < speedup < 1.8


class TestFigure10:
    @pytest.fixture(scope="class")
    def tables(self):
        return experiments.figure10(queries=1)

    def test_three_families(self, tables):
        assert len(tables) == 3

    def test_comparison_flat_across_depth(self, tables):
        depth_table = tables[0]
        comparisons = depth_table.column("comparison_ms")
        assert max(comparisons) == pytest.approx(min(comparisons), rel=0.01)

    def test_levels_linear_in_depth(self, tables):
        depth_table = tables[0]
        levels = depth_table.column("levels_ms")
        # depth4/5/6 over the same 15 branches: level time ~ d * b.
        assert levels[1] / levels[0] == pytest.approx(5 / 4, rel=0.05)
        assert levels[2] / levels[0] == pytest.approx(6 / 4, rel=0.05)

    def test_levels_proportional_to_branches(self, tables):
        width_table = tables[1]
        levels = width_table.column("levels_ms")
        # width55/78/677 have 10/15/20 branches at depth 5.
        assert levels[1] / levels[0] == pytest.approx(1.5, rel=0.05)
        assert levels[2] / levels[0] == pytest.approx(2.0, rel=0.05)

    def test_comparison_superlinear_in_precision(self, tables):
        prec_table = tables[2]
        comparisons = prec_table.column("comparison_ms")
        assert comparisons[1] / comparisons[0] > 2.0  # p log p growth

    def test_non_comparison_phases_flat_across_precision(self, tables):
        prec_table = tables[2]
        levels = prec_table.column("levels_ms")
        assert levels[0] == pytest.approx(levels[1], rel=0.01)

    def test_series_view(self):
        series = experiments.figure10_series(queries=1)
        assert len(series) == 12  # 3 families x 4 phases
        assert all(s.points for s in series)


class TestComplexityTables:
    def test_table1_structure(self):
        tables = experiments.table1(workload_name="width55")
        assert len(tables) == 4
        assert "comparison" in tables[0].title

    def test_table2_measured_equals_impl(self):
        table = experiments.table2(workload_name="width55")
        for row in table.rows:
            op, measured, impl, _paper = row
            assert measured == impl, f"{op}: measured {measured} != impl {impl}"


class TestTable5:
    def test_sweep_on_micro_models(self):
        table = experiments.table5(workload_names=["depth4", "prec16"])
        assert any("dominant setting" in n for n in table.notes)
        feasible = [
            row for row in table.rows if row[5] == "yes"
        ]
        assert feasible
        # 400 bits is the smallest feasible chain for prec16's depth-14
        # circuit at security 128 (the paper's finding).
        assert all(row[1] >= 400 or row[0] > 128 for row in feasible)

    def test_insecure_params_never_feasible(self):
        table = experiments.table5(workload_names=["depth4"])
        for row in table.rows:
            if row[0] < 128:
                assert row[5] == "no"


class TestTable6:
    def test_spec_matches_generated(self):
        table = experiments.table6()
        assert len(table.rows) == 8
        for row in table.rows:
            assert row[4] == row[5]  # branches == generated b
            assert row[1] == row[6]  # max depth == generated d


class TestThroughput:
    def test_batching_pays_on_width78(self):
        """PR acceptance: amortized per-query cost strictly below the
        unbatched ``secure_inference`` cost for the width78 workload."""
        table = experiments.throughput(
            workload_name="width78", queries=16, threads=2
        )
        unbatched_ms = table.rows[0][3]
        batched_ms = table.rows[1][3]
        assert batched_ms < unbatched_ms
        assert table.rows[0][5] == "ok" and table.rows[1][5] == "ok"
        # One capacity-48 batch absorbs all 16 queries.
        assert table.rows[1][1] == 1
        assert table.rows[1][2] > 1

    def test_throughput_scales_with_workers(self):
        # batch_size=2 splits 8 queries into 4 batches, so a larger pool
        # genuinely overlaps more work.
        two = experiments.throughput(
            "width55", queries=8, threads=2, batch_size=2
        )
        four = experiments.throughput(
            "width55", queries=8, threads=4, batch_size=2
        )
        assert four.rows[1][4] > two.rows[1][4]

    def test_single_batch_gains_nothing_from_idle_workers(self):
        """qps must not claim parallelism beyond the batch count."""
        one = experiments.throughput("width55", queries=4, threads=1)
        four = experiments.throughput("width55", queries=4, threads=4)
        assert one.rows[1][1] == four.rows[1][1] == 1  # one batch each
        assert four.rows[1][4] == pytest.approx(one.rows[1][4])

    def test_batch_size_cap_respected(self):
        table = experiments.throughput(
            "width55", queries=6, threads=2, batch_size=2
        )
        assert table.rows[1][2] == 2  # capacity capped
        assert table.rows[1][1] == 3  # 6 queries -> 3 batches


class TestPlanSpeedup:
    @pytest.fixture(scope="class")
    def table(self):
        return experiments.plan_speedup(workload_name="width78", queries=2)

    def test_plan_at_most_eager_cost(self, table):
        """ISSUE 2 acceptance: plan-engine per-query simulated cost must
        be <= the eager engine's, with both paths oracle-exact."""
        eager = table.row("eager")
        plan = table.row("plan")
        assert plan[3] <= eager[3]
        assert eager[4] == "ok" and plan[4] == "ok"

    def test_optimizer_beats_naive_lowering(self, table):
        unoptimized = table.row("plan (unoptimized)")
        plan = table.row("plan")
        assert plan[1] < unoptimized[1]  # strictly fewer rotations
        assert plan[3] < unoptimized[3]  # strictly lower cost ms

    def test_plan_reduces_rotations_below_eager(self, table):
        assert table.row("plan")[1] < table.row("eager")[1]
        assert any("cheaper per query" in n for n in table.notes)


class TestBackendSpeedup:
    @pytest.fixture(scope="class")
    def table(self):
        return experiments.backend_speedup(
            workload_name="width55", queries=2, repeats=1
        )

    def test_covers_every_builtin_backend_and_mode(self, table):
        pairs = {(r[0], r[1]) for r in table.rows}
        for backend in ("reference", "vector", "plaintext"):
            for mode in ("single", "batched/plan", "batched/eager"):
                assert (backend, mode) in pairs

    def test_all_backends_oracle_exact(self, table):
        assert all(ok == "ok" for ok in table.column("oracle"))

    def test_reference_is_the_unit_baseline(self, table):
        for row in table.rows:
            if row[0] == "reference":
                assert row[3] == pytest.approx(1.0)

    def test_wall_clock_positive(self, table):
        assert all(ms > 0 for ms in table.column("wall_ms_per_query"))

    def test_rejects_bad_arguments(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            experiments.backend_speedup(queries=0)
        with pytest.raises(ValidationError):
            experiments.backend_speedup(repeats=0)
        with pytest.raises(ValidationError):
            experiments.backend_speedup(backends=["vector"])  # no baseline


class TestReportHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_table_render_and_access(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row("x", 1.5)
        t.add_note("hello")
        text = t.render()
        assert "T" in text and "1.50" in text and "hello" in text
        assert t.column("b") == [1.5]
        assert t.row("x") == ["x", 1.5]
        with pytest.raises(KeyError):
            t.row("missing")
        with pytest.raises(ValueError):
            t.add_row("only-one-cell")
