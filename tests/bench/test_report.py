"""Tests for report rendering helpers and experiment-cache behaviour."""

import math

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import Series, Table, geometric_mean, render_all


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_matches_log_definition(self):
        values = [1.5, 2.5, 10.0, 0.3]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected)


class TestSeries:
    def test_points_and_render(self):
        s = Series(name="levels", x_label="depth", y_label="ms")
        s.add_point("d4", 22.0)
        s.add_point("d5", 27.5)
        assert s.ys() == [22.0, 27.5]
        text = s.render()
        assert "levels" in text and "d4=22.00" in text


class TestTableRendering:
    def test_alignment_and_floats(self):
        t = Table(title="X", columns=["name", "value"])
        t.add_row("long-name-here", 1.23456)
        t.add_row("a", 1000)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "X"
        assert "1.23" in text and "1000" in text
        # All data lines share the header's tabular width.
        header_len = len(lines[2])
        assert all(len(l) <= header_len + 2 for l in lines[3:])

    def test_render_all(self):
        a = Table(title="A", columns=["c"])
        a.add_row(1)
        b = Table(title="B", columns=["c"])
        b.add_row(2)
        text = render_all([a, b], title="both")
        assert "### both ###" in text
        assert "A" in text and "B" in text


class TestExperimentCache:
    def test_records_are_memoized(self):
        experiments.clear_cache()
        t1 = experiments.figure6(queries=1, workload_names=["width55"])
        # Second call hits the cache: identical object values.
        t2 = experiments.figure6(queries=1, workload_names=["width55"])
        assert t1.rows == t2.rows

    def test_clear_cache(self):
        experiments.figure6(queries=1, workload_names=["width55"])
        experiments.clear_cache()
        assert experiments._RECORD_CACHE == {}
