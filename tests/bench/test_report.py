"""Tests for report rendering helpers, experiment-cache behaviour, and
the deterministic `repro bench report` regeneration entry point."""

import math
from pathlib import Path

import pytest

from repro.bench_harness import experiments
from repro.bench_harness.report import Series, Table, geometric_mean, render_all
from repro.bench_harness.report_gen import (
    MODE_INDEPENDENT_SECTIONS,
    SECTION_KEYS,
    generate_report,
    render_report,
    report_structure,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CHECKED_IN_REPORT = REPO_ROOT / "benchmark_report.txt"


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_matches_log_definition(self):
        values = [1.5, 2.5, 10.0, 0.3]
        expected = math.exp(sum(math.log(v) for v in values) / len(values))
        assert geometric_mean(values) == pytest.approx(expected)


class TestSeries:
    def test_points_and_render(self):
        s = Series(name="levels", x_label="depth", y_label="ms")
        s.add_point("d4", 22.0)
        s.add_point("d5", 27.5)
        assert s.ys() == [22.0, 27.5]
        text = s.render()
        assert "levels" in text and "d4=22.00" in text


class TestTableRendering:
    def test_alignment_and_floats(self):
        t = Table(title="X", columns=["name", "value"])
        t.add_row("long-name-here", 1.23456)
        t.add_row("a", 1000)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "X"
        assert "1.23" in text and "1000" in text
        # All data lines share the header's tabular width.
        header_len = len(lines[2])
        assert all(len(l) <= header_len + 2 for l in lines[3:])

    def test_render_all(self):
        a = Table(title="A", columns=["c"])
        a.add_row(1)
        b = Table(title="B", columns=["c"])
        b.add_row(2)
        text = render_all([a, b], title="both")
        assert "### both ###" in text
        assert "A" in text and "B" in text


class TestExperimentCache:
    def test_records_are_memoized(self):
        experiments.clear_cache()
        t1 = experiments.figure6(queries=1, workload_names=["width55"])
        # Second call hits the cache: identical object values.
        t2 = experiments.figure6(queries=1, workload_names=["width55"])
        assert t1.rows == t2.rows

    def test_clear_cache(self):
        experiments.figure6(queries=1, workload_names=["width55"])
        experiments.clear_cache()
        assert experiments._RECORD_CACHE == {}


class TestReportRegeneration:
    """The checked-in benchmark_report.txt must match what the single
    entry point regenerates: same section banners in the same order,
    and — for mode-independent sections — identical table structure.
    This is the lock against the regeneration drift that used to creep
    in when the benchmark suite rewrote the file in collection order."""

    def test_checked_in_report_has_canonical_structure(self):
        assert CHECKED_IN_REPORT.exists(), (
            "benchmark_report.txt is missing; regenerate with "
            "`PYTHONPATH=src python -m repro bench report`"
        )
        structure = report_structure(CHECKED_IN_REPORT.read_text())
        assert [banner for banner, _ in structure] == list(SECTION_KEYS)

    def test_quick_regeneration_matches_checked_in_structure(self):
        """Regenerate the cheap, mode-independent sections in quick mode
        and compare banner + title verbatim against the checked-in
        file (full regeneration is exercised by `repro bench report`)."""
        checked_in = dict(report_structure(CHECKED_IN_REPORT.read_text()))
        from repro.bench_harness.report_gen import build_section

        sections = {
            key: build_section(key, quick=True)
            for key in MODE_INDEPENDENT_SECTIONS
        }
        text = render_report(sections, quick=True)
        for banner, title in report_structure(text):
            assert checked_in[banner] == title, (
                f"section {banner!r}: checked-in title "
                f"{checked_in[banner]!r} != regenerated {title!r}"
            )

    def test_partial_regeneration_never_writes_trajectory(self, tmp_path):
        """A partial section run must not publish a partial BENCH json."""
        report = tmp_path / "report.txt"
        bench = tmp_path / "BENCH.json"
        written = generate_report(
            quick=True,
            sections=("table6",),
            report_path=str(report),
            json_path=str(bench),
        )
        assert written == [str(report)]
        assert report.exists() and not bench.exists()
        structure = report_structure(report.read_text())
        assert [b for b, _ in structure] == ["table6"]

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError, match="unknown report sections"):
            generate_report(quick=True, sections=("nope",),
                            report_path=None, json_path=None)
