"""Regression guard for the optimized inference plans and compiled tapes.

``plan_baseline.json`` pins, per workload, the optimized plan's op
counts, multiplicative depth, and cost-model milliseconds (plus the
unoptimized lowering's, to keep the optimizer's win visible), and the
compiled tape's profile: op counts after rotation scheduling, peak live
ciphertext slots, register count, and instruction count.  A tier-1
failure here means a change made the optimizer *worse* on the live
workloads: any op-count increase, a cost regression beyond 5 %, or a
peak-live/instruction-count increase fails — getting strictly better
requires regenerating the baseline.  The tape guard additionally holds
the scheduler to its claim: tape rotations strictly below the plan's on
the batched serve lowering, and never above it anywhere.

Regenerate after an intentional improvement with::

    PYTHONPATH=src python tests/bench/test_plan_baseline.py

The baselined workloads are Table 6 microbenchmarks (fast to compile),
plus the batched lowering of width78 at the paper parameters' full
capacity — the exact plan the serve registry caches.
"""

import json
from pathlib import Path

import pytest

from repro import lower_batched_inference, lower_inference
from repro.fhe.costmodel import CostModel
from repro.ir.megakernel import compile_megakernel
from repro.fhe.params import EncryptionParams
from repro.serve import plan_layout

BASELINE_PATH = Path(__file__).parent / "plan_baseline.json"

#: Cost regressions beyond this ratio fail (op-count increases always do).
COST_TOLERANCE = 1.05

SINGLE_WORKLOADS = ("depth4", "width78", "prec8")
BATCHED_WORKLOADS = ("width78",)


def _profile_dict(profile, cost_model):
    return {
        "counts": {op.value: n for op, n in sorted(
            profile.counts.items(), key=lambda kv: kv[0].value
        )},
        "num_nodes": profile.num_nodes,
        "depth": profile.depth,
        "cost_ms": round(profile.cost_ms(cost_model), 4),
    }


def _plan_entry(plan, cost_model):
    tape = plan.compile_tape()
    tape_profile = _profile_dict(tape.profile, cost_model)
    tape_profile.update(
        {
            "peak_live": tape.peak_live,
            "slots": tape.num_slots,
            "instructions": tape.num_instructions,
        }
    )
    kernel = compile_megakernel(tape)
    return {
        "optimized": _profile_dict(plan.optimized, cost_model),
        "raw": _profile_dict(plan.raw, cost_model),
        "tape": tape_profile,
        # The megakernel shares the tape's profile by construction, so
        # only its compiled-plane shape needs pinning.
        "megakernel": {
            "supported": kernel.supported,
            "segments": kernel.num_segments,
            "steps": kernel.num_blocks,
            "register_rows": kernel.num_rows,
            "live_rows": kernel.data_rows,
        },
    }


def current_profiles():
    """Lower and profile every baselined plan (deterministic)."""
    from repro.bench_harness.workloads import workload_by_name

    params = EncryptionParams.paper_defaults()
    cost_model = CostModel(params)
    out = {}
    for name in SINGLE_WORKLOADS:
        compiled = workload_by_name(name).compiled
        out[name] = _plan_entry(lower_inference(compiled), cost_model)
    for name in BATCHED_WORKLOADS:
        compiled = workload_by_name(name).compiled
        layout = plan_layout(compiled, params)
        out[f"{name}@batched"] = _plan_entry(
            lower_batched_inference(compiled, layout), cost_model
        )
    return out


@pytest.fixture(scope="module")
def baseline():
    assert BASELINE_PATH.exists(), (
        f"{BASELINE_PATH} is missing; regenerate with "
        f"`python {Path(__file__).relative_to(Path.cwd())}`"
    )
    return json.loads(BASELINE_PATH.read_text())


@pytest.fixture(scope="module")
def current():
    return current_profiles()


def test_baseline_covers_all_workloads(baseline, current):
    assert set(baseline) == set(current)


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_no_plan_regression(baseline, current, key):
    """Optimized-plan cost within 5 % of baseline, no op count up."""
    base = baseline[key]["optimized"]
    cur = current[key]["optimized"]
    assert cur["cost_ms"] <= base["cost_ms"] * COST_TOLERANCE, (
        f"{key}: optimized plan cost regressed "
        f"{base['cost_ms']:.2f} -> {cur['cost_ms']:.2f} ms"
    )
    assert cur["depth"] <= base["depth"], f"{key}: depth regressed"
    for op, count in cur["counts"].items():
        assert count <= base["counts"].get(op, 0), (
            f"{key}: op {op} count increased "
            f"{base['counts'].get(op, 0)} -> {count}"
        )


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_optimizer_strictly_wins(current, key):
    """The optimizer must keep beating the naive lowering: strictly
    fewer rotations and strictly lower cost (the ISSUE 2 acceptance
    bar for width78, held for every baselined workload)."""
    raw = current[key]["raw"]
    opt = current[key]["optimized"]

    def rotations(profile):
        return profile["counts"].get("rotate", 0) + profile["counts"].get(
            "extend", 0
        )

    assert rotations(opt) < rotations(raw), key
    assert opt["cost_ms"] < raw["cost_ms"], key
    assert opt["depth"] <= raw["depth"], key


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_no_tape_regression(baseline, current, key):
    """Tape cost within 5 % of baseline; no op-count, peak-live,
    register, or instruction-count increase."""
    base = baseline[key]["tape"]
    cur = current[key]["tape"]
    assert cur["cost_ms"] <= base["cost_ms"] * COST_TOLERANCE, (
        f"{key}: tape cost regressed "
        f"{base['cost_ms']:.2f} -> {cur['cost_ms']:.2f} ms"
    )
    assert cur["depth"] <= base["depth"], f"{key}: tape depth regressed"
    for metric in ("peak_live", "slots", "instructions"):
        assert cur[metric] <= base[metric], (
            f"{key}: tape {metric} regressed "
            f"{base[metric]} -> {cur[metric]}"
        )
    for op, count in cur["counts"].items():
        assert count <= base["counts"].get(op, 0), (
            f"{key}: tape op {op} count increased "
            f"{base['counts'].get(op, 0)} -> {count}"
        )


def _rotations(profile):
    return profile["counts"].get("rotate", 0) + profile["counts"].get(
        "extend", 0
    )


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_tape_never_loses_to_plan(current, key):
    """The rotation scheduler may only remove rotation work, and its
    register allocator must keep peak live ciphertexts below holding
    every intermediate (what the plan executor does)."""
    opt = current[key]["optimized"]
    tape = current[key]["tape"]
    assert _rotations(tape) <= _rotations(opt), key
    assert tape["cost_ms"] <= opt["cost_ms"], key
    assert tape["depth"] <= opt["depth"], key
    assert tape["peak_live"] < tape["num_nodes"], key


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_no_megakernel_regression(baseline, current, key):
    """Every baselined tape must keep compiling into the gather grammar
    (no silent tape-loop fallback), and the compiled plane may only
    shrink: fewer or equal segments, steps, and register rows."""
    base = baseline[key]["megakernel"]
    cur = current[key]["megakernel"]
    assert cur["supported"], f"{key}: megakernel fell back to the tape loop"
    for metric in ("segments", "steps", "register_rows", "live_rows"):
        assert cur[metric] <= base[metric], (
            f"{key}: megakernel {metric} regressed "
            f"{base[metric]} -> {cur[metric]}"
        )


@pytest.mark.parametrize(
    "key",
    list(SINGLE_WORKLOADS) + [f"{n}@batched" for n in BATCHED_WORKLOADS],
)
def test_megakernel_plane_bounded_by_liveness(current, key):
    """The register plane is liveness-sized: live rows bounded by the
    plane, strictly below one-row-per-instruction, and the schedule
    never exceeds one step per instruction."""
    mk = current[key]["megakernel"]
    tape = current[key]["tape"]
    assert mk["live_rows"] <= mk["register_rows"]
    assert mk["live_rows"] < tape["instructions"], key
    assert mk["segments"] <= mk["steps"] <= tape["instructions"], key


@pytest.mark.parametrize("key", [f"{n}@batched" for n in BATCHED_WORKLOADS])
def test_tape_strictly_beats_plan_on_batched_serve(current, key):
    """The ISSUE 5 acceptance bar: on the batched serve lowering the
    scheduled tape performs strictly fewer rotations than the plan."""
    assert _rotations(current[key]["tape"]) < _rotations(
        current[key]["optimized"]
    ), key


def regenerate() -> None:
    BASELINE_PATH.write_text(
        json.dumps(current_profiles(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {BASELINE_PATH}")


if __name__ == "__main__":
    regenerate()
