"""Capstone differential tests: every secure path against every other.

Five independent implementations compute decision-forest classifications
in this repository: plaintext inference (the oracle), COPSE via the
direct runtime, COPSE via the optimized IR, the Aloufi et al. polynomial
baseline, and the Wu et al. OT protocol — plus the three-party threshold
variant of COPSE.  On random models and random inputs they must all
agree, which cross-checks every layer at once (analysis, structures,
SecComp, MatMul, noise accounting, codegen of the IR, AHE, threshold
decryption).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baseline.runtime import baseline_inference
from repro.baseline.wu_ot import wu_inference
from repro.core.compiler import CopseCompiler
from repro.core.runtime import secure_inference
from repro.core.threeparty import three_party_inference
from repro.forest.synthetic import random_forest
from repro.ir import ir_secure_inference


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_all_secure_paths_agree(model_seed, query_seed):
    forest = random_forest(
        np.random.default_rng(model_seed),
        branches_per_tree=[5, 7],
        max_depth=4,
        n_features=3,
    )
    compiled = CopseCompiler(precision=8).compile(forest)
    features = [
        int(v) for v in np.random.default_rng(query_seed).integers(0, 256, 3)
    ]

    oracle_labels = forest.classify_per_tree(features)
    oracle_bits = forest.label_bitvector(features)

    direct = secure_inference(compiled, features)
    assert direct.result.bitvector == oracle_bits
    assert direct.result.chosen_labels == oracle_labels

    via_ir = ir_secure_inference(compiled, features)
    assert via_ir.result.bitvector == oracle_bits

    aloufi = baseline_inference(forest, features)
    assert aloufi.result.labels == oracle_labels

    wu = wu_inference(forest, features, seed=model_seed % 1000)
    assert wu.labels == oracle_labels

    threeparty = three_party_inference(compiled, features)
    assert threeparty.result.bitvector == oracle_bits


@pytest.mark.parametrize("precision", [4, 8, 12])
def test_precision_sweep_agreement(precision):
    """The same cross-check across fixed-point precisions."""
    forest = random_forest(
        np.random.default_rng(99),
        branches_per_tree=[6, 6],
        max_depth=4,
        n_features=2,
        precision=precision,
    )
    compiled = CopseCompiler(precision=precision).compile(forest)
    rng = np.random.default_rng(100)
    limit = 1 << precision
    for _ in range(3):
        features = [int(v) for v in rng.integers(0, limit, 2)]
        oracle_labels = forest.classify_per_tree(features)
        assert (
            secure_inference(compiled, features).result.chosen_labels
            == oracle_labels
        )
        assert (
            baseline_inference(forest, features, precision=precision).result.labels
            == oracle_labels
        )
        assert (
            wu_inference(forest, features, precision=precision).labels
            == oracle_labels
        )


def test_single_branch_degenerate_model():
    """The smallest possible model exercises every path's edge cases."""
    from repro.forest.forest import DecisionForest
    from repro.forest.node import Branch, Leaf
    from repro.forest.tree import DecisionTree

    tree = DecisionTree(root=Branch(0, 128, Leaf(1), Leaf(0)))
    forest = DecisionForest(
        trees=[tree], label_names=["low", "high"], n_features=1
    )
    compiled = CopseCompiler(precision=8).compile(forest)
    for x, expected in ((0, 1), (127, 1), (128, 0), (255, 0)):
        assert secure_inference(compiled, [x]).result.chosen_labels == [expected]
        assert baseline_inference(forest, [x]).result.labels == [expected]
        assert wu_inference(forest, [x]).labels == [expected]
        assert ir_secure_inference(compiled, [x]).result.chosen_labels == [
            expected
        ]
